// Multi-subject brain registration (the paper's real-world problem,
// section IV-C, run here on procedural brain phantoms — see DESIGN.md).
//
// Uses the paper's anisotropic grid shape (256 x 300 x 256, scaled down to
// 48 x 56 x 48 so it runs in seconds; 56 exercises the non-power-of-two
// Bluestein FFT path exactly like 300 does), beta continuation, and dumps
// the Fig. 6/7 panels as PGM slices: reference, template, residual before,
// residual after, det(grad y) map, deformed template.
#include <cstdio>

#include "core/diffreg.hpp"
#include "grid/field_io.hpp"
#include "imaging/io.hpp"
#include "imaging/synthetic.hpp"

using namespace diffreg;

int main() {
  const Int3 dims{48, 56, 48};
  const int ranks = 2;

  mpisim::run_spmd(ranks, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims);
    const bool root = comm.is_root();

    auto rho_r = imaging::brain_phantom(decomp, /*subject=*/1);
    auto rho_t = imaging::brain_phantom(decomp, /*subject=*/2);

    core::RegistrationOptions opt;
    opt.gtol = 1e-2;
    opt.max_newton_iters = 15;
    core::RegistrationSolver solver(decomp, opt);

    core::ContinuationOptions copt;
    copt.beta_start = 1e-1;
    copt.beta_target = 1e-3;
    auto cont = core::run_beta_continuation(solver, rho_t, rho_r, copt);

    if (root) {
      std::printf("brain registration (multi-subject phantoms), %lldx%lldx%lld\n",
                  static_cast<long long>(dims[0]),
                  static_cast<long long>(dims[1]),
                  static_cast<long long>(dims[2]));
      for (int s = 0; s < cont.stages; ++s)
        std::printf("  stage %d: beta %.1e  rel residual %.3f  min det %.3f\n",
                    s, cont.stage_betas[s], cont.stage_residuals[s],
                    cont.stage_min_dets[s]);
      std::printf("  accepted beta %.1e, rel residual %.3f, det in [%.3f, %.3f]\n",
                  cont.final_beta, cont.best.rel_residual, cont.best.min_det,
                  cont.best.max_det);
    }

    // Fig. 6/7 panels.
    grid::ScalarField deformed, det;
    solver.deform_template(rho_t, cont.best.velocity, deformed);
    solver.jacobian_field(cont.best.velocity, det);

    const index_t n = decomp.local_real_size();
    grid::ScalarField res_before(n), res_after(n);
    for (index_t i = 0; i < n; ++i) {
      res_before[i] = std::abs(rho_t[i] - rho_r[i]);
      res_after[i] = std::abs(deformed[i] - rho_r[i]);
    }

    auto dump = [&](const grid::ScalarField& f, const char* name, real_t lo,
                    real_t hi) {
      auto full = grid::gather_to_root(decomp, f);
      if (root) {
        const index_t slice = dims[0] / 2;
        imaging::write_pgm_slice(std::string("brain_") + name + ".pgm", dims,
                                 full, slice, lo, hi);
      }
    };
    dump(rho_r, "reference", 0, 1);
    dump(rho_t, "template", 0, 1);
    dump(res_before, "residual_before", 0, 1);
    dump(res_after, "residual_after", 0, 1);
    dump(det, "det_grad_y", 0, 2);  // paper's Fig. 7 color scale [0, 2]
    dump(deformed, "deformed_template", 0, 1);
    if (root)
      std::printf("  wrote brain_*.pgm slice panels (axial slice %lld)\n",
                  static_cast<long long>(dims[0] / 2));
  });
  return 0;
}
