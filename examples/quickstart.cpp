// Quickstart: register the paper's synthetic problem (section IV-A1) on a
// 32^3 grid with 2 simulated MPI ranks and print the solver diagnostics.
//
//   rho_T = (sin^2 x1 + sin^2 x2 + sin^2 x3)/3
//   rho_R = solution of the transport problem with the known velocity v*
//
// The solver should recover a velocity that drives the image mismatch well
// below its initial value while keeping det(grad y) > 0 (diffeomorphic).
#include <cstdio>

#include "core/diffreg.hpp"
#include "imaging/synthetic.hpp"

using namespace diffreg;

int main() {
  const Int3 dims{32, 32, 32};
  const int ranks = 2;

  mpisim::run_spmd(ranks, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims);

    // Build the synthetic problem.
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, /*amplitude=*/0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    // Register.
    core::RegistrationOptions opt;
    opt.beta = 1e-2;
    opt.gtol = 1e-2;
    opt.max_newton_iters = 10;
    opt.verbose = comm.is_root();
    core::RegistrationSolver solver(decomp, opt);
    auto result = solver.run(rho_t, rho_r);

    if (comm.is_root()) {
      std::printf("quickstart: %lld^3 grid, %d ranks\n",
                  static_cast<long long>(dims[0]), ranks);
      std::printf("  newton iterations   : %d\n", result.newton.iterations);
      std::printf("  hessian matvecs     : %d\n", result.newton.total_matvecs);
      std::printf("  |g|/|g0|            : %.3e\n",
                  result.newton.final_gradient_norm /
                      result.newton.initial_gradient_norm);
      std::printf("  residual ||rhoT(y)-rhoR|| / ||rhoT-rhoR|| : %.3f\n",
                  result.rel_residual);
      std::printf("  det(grad y) in [%.3f, %.3f], mean %.3f\n",
                  result.min_det, result.max_det, result.mean_det);
      std::printf("  time to solution    : %.2f s\n",
                  result.time_to_solution);
      std::printf("  fft  comm %.2fs exec %.2fs | interp comm %.2fs exec %.2fs\n",
                  result.timings.get(TimeKind::kFftComm),
                  result.timings.get(TimeKind::kFftExec),
                  result.timings.get(TimeKind::kInterpComm),
                  result.timings.get(TimeKind::kInterpExec));
      const bool pass = result.rel_residual < 0.5 && result.min_det > 0;
      std::printf("quickstart %s\n", pass ? "PASSED" : "FAILED");
    }
  });
  return 0;
}
