// Volume-preserving (incompressible) registration — the paper's hardest
// setting (Table III): the velocity is constrained to div v = 0 via the
// Leray projector, which forces det(grad y) = 1 (a locally volume
// preserving, "mass preserving" diffeomorphism, paper section II-A).
#include <cmath>
#include <cstdio>

#include "core/diffreg.hpp"
#include "imaging/synthetic.hpp"

using namespace diffreg;

int main() {
  const Int3 dims{32, 32, 32};
  const int ranks = 2;

  mpisim::run_spmd(ranks, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims);
    spectral::SpectralOps ops(decomp);

    // Divergence-free ground truth so a volume-preserving map can explain
    // the data exactly.
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity_divfree(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    core::RegistrationOptions opt;
    opt.incompressible = true;
    opt.beta = 1e-2;
    opt.max_newton_iters = 10;
    core::RegistrationSolver solver(decomp, opt);
    auto result = solver.run(rho_t, rho_r);

    // Check the incompressibility invariants.
    grid::ScalarField div_v;
    ops.divergence(result.velocity, div_v);
    const real_t div_norm = grid::norm_inf(decomp, div_v);
    const real_t vol_error =
        std::max(std::abs(result.min_det - 1), std::abs(result.max_det - 1));

    if (comm.is_root()) {
      std::printf("incompressible registration, %lld^3\n",
                  static_cast<long long>(dims[0]));
      std::printf("  newton its %d, matvecs %d\n", result.newton.iterations,
                  result.newton.total_matvecs);
      std::printf("  rel residual        : %.3f\n", result.rel_residual);
      std::printf("  max |div v|         : %.3e\n", div_norm);
      std::printf("  det(grad y) in [%.4f, %.4f] (volume preserving -> 1)\n",
                  result.min_det, result.max_det);
      const bool pass =
          result.rel_residual < 0.7 && div_norm < 1e-8 && vol_error < 0.05;
      std::printf("incompressible %s\n", pass ? "PASSED" : "FAILED");
    }
  });
  return 0;
}
