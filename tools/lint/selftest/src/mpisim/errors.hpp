// Miniature errors.hpp for contract_lint.py --selftest: the same
// CommError root the real tree has, so the mpisim-throw rule resolves
// its allowed-type set the same way.
#pragma once

#include <stdexcept>
#include <string>

namespace selftest::mpisim {

class CommError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CommTimeoutError : public CommError {
 public:
  explicit CommTimeoutError(const std::string& what) : CommError(what) {}
};

}  // namespace selftest::mpisim
