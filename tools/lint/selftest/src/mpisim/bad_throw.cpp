// Seeds the mpisim-throw violation for contract_lint.py --selftest:
// one throw of a type that does not derive from CommError. The good
// throw and the bare rethrow below must NOT be flagged.
#include <stdexcept>

#include "errors.hpp"

namespace selftest::mpisim {

void good_throw() { throw CommTimeoutError("deadline expired"); }

void good_rethrow() {
  try {
    good_throw();
  } catch (...) {
    throw;  // bare rethrow is allowed
  }
}

void bad_throw() {
  // seeded: std::runtime_error is not CommError-derived
  throw std::runtime_error("unstructured failure");
}

}  // namespace selftest::mpisim
