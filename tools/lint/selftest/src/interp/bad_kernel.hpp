// Seeds the zero-alloc violation for contract_lint.py --selftest: a
// function marked `// diffreg:zero-alloc` that grows a vector. The
// clean marked function below must NOT be flagged.
#pragma once

#include <vector>

namespace selftest::interp {

// diffreg:zero-alloc
inline double clean_kernel(const double* g, int n) {
  double acc = 0;
  for (int i = 0; i < n; ++i) acc += g[i];
  return acc;
}

// diffreg:zero-alloc
inline void bad_kernel(std::vector<double>& out, double v) {
  out.push_back(v);  // seeded: allocation in a zero-alloc function
}

}  // namespace selftest::interp
