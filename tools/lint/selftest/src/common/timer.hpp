// Miniature Timings used by contract_lint.py --selftest. Seeds exactly
// two violations:
//   timings-plumbing  `bytes_` is missing from clear()
//   timekind-unused   TimeKind::kGhost is never referenced
// Everything else is deliberately clean so the selftest count stays at
// one finding per rule.
#pragma once

#include <array>
#include <cstdint>

namespace selftest {

enum class TimeKind : int {
  kFftComm = 0,
  kGhost,  // seeded: nothing references TimeKind::kGhost
  kCount,
};

constexpr int kNumTimeKinds = static_cast<int>(TimeKind::kCount);

class Timings {
 public:
  void clear() {
    seconds_.fill(0.0);
    // seeded: bytes_ is NOT cleared
  }

  Timings& operator+=(const Timings& other) {
    for (int k = 0; k < kNumTimeKinds; ++k) {
      seconds_[k] += other.seconds_[k];
      bytes_[k] += other.bytes_[k];
    }
    return *this;
  }

  void max_with(const Timings& other) {
    for (int k = 0; k < kNumTimeKinds; ++k) {
      if (other.seconds_[k] > seconds_[k]) seconds_[k] = other.seconds_[k];
      if (other.bytes_[k] > bytes_[k]) bytes_[k] = other.bytes_[k];
    }
  }

  double get(TimeKind kind) const {
    return seconds_[static_cast<int>(kind)];
  }
  std::uint64_t bytes(TimeKind kind) const {
    return bytes_[static_cast<int>(kind)];
  }
  void add(TimeKind kind, double s) { seconds_[static_cast<int>(kind)] += s; }
  void add_bytes(TimeKind kind, std::uint64_t b) {
    bytes_[static_cast<int>(kind)] += b;
  }

 private:
  std::array<double, kNumTimeKinds> seconds_{};
  std::array<std::uint64_t, kNumTimeKinds> bytes_{};
};

inline Timings timings_delta(const Timings& before, const Timings& after) {
  Timings d;
  for (int k = 0; k < kNumTimeKinds; ++k) {
    const auto kind = static_cast<TimeKind>(k);
    d.add(kind, after.get(kind) - before.get(kind));
    d.add_bytes(kind, after.bytes(kind) - before.bytes(kind));
  }
  return d;
}

inline double use_fft(const Timings& t) { return t.get(TimeKind::kFftComm); }

}  // namespace selftest
