#!/usr/bin/env python3
"""Project-specific contract lint for the diffreg tree.

Four rules, each encoding a cross-file invariant the compiler cannot see
(docs/ANALYSIS.md has the full rationale):

  zero-alloc        A function annotated with a `// diffreg:zero-alloc`
                    comment must not allocate on the heap: no new/malloc
                    family, no growing-container calls (push_back, resize,
                    reserve, ...), no std::string/std::vector construction.
                    These are the warm-path kernels the paper's flop/byte
                    model budgets; an accidental allocation is a silent
                    performance regression no test asserts on.
  timings-plumbing  Every private counter member of `Timings` (timer.hpp)
                    must be plumbed through clear(), operator+=, max_with()
                    and the free timings_delta() helper. Forgetting one
                    (the historical failure mode when a counter is added)
                    makes per-phase deltas silently wrong.
  mpisim-throw      Every `throw` under src/mpisim must throw a type that
                    derives from CommError (errors.hpp), so run_spmd
                    callers can classify any comm failure from one root
                    and the chaos CI job can grep what() class names.
  timekind-unused   Every TimeKind enum value must be referenced as
                    `TimeKind::kX` somewhere outside its declaration —
                    a category nothing accounts to is dead weight in every
                    report table.

Backends: the token scanner below is self-contained (no third-party
imports) and is what runs everywhere, including the no-network build
container. When python3-clang (libclang) is importable, the zero-alloc
rule is ADDITIONALLY checked on the AST (operator-new expressions and
calls to allocating members), parsing each marked file with the flags
recorded in compile_commands.json when one is given. Findings from both
backends are merged; libclang being absent only narrows detection to the
token level, it never changes a clean tree into a dirty one.

Exit status: 0 clean, 1 findings reported, 2 usage/internal error.
`--selftest` runs all rules against tools/lint/selftest/, a miniature
tree seeding exactly one violation per rule, and verifies each is caught.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass

RULE_IDS = ("zero-alloc", "timings-plumbing", "mpisim-throw", "timekind-unused")

MARKER = "diffreg:zero-alloc"

# Token-level allocation signatures. Matched against comment- and
# string-stripped function bodies, so doc text never trips them.
ALLOC_TOKENS = [
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\b(?:malloc|calloc|realloc|strdup|aligned_alloc)\s*\("),
     "C allocation call"),
    (re.compile(r"\.\s*(?:push_back|emplace_back|resize|reserve|insert|"
                r"assign|append)\s*\("), "growing-container call"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "smart-pointer factory"),
    (re.compile(r"\bstd::(?:vector|string|map|set|unordered_map|"
                r"unordered_set|deque|list)\s*<[^;{]*>\s+\w+\s*[({;]"),
     "owning-container construction"),
    (re.compile(r"\bstd::string\s+\w+"), "std::string construction"),
    (re.compile(r"\bto_string\s*\("), "std::to_string"),
]

# Allocating callees the AST backend resolves CALL_EXPRs to.
CLANG_ALLOC_METHODS = {
    "push_back", "emplace_back", "resize", "reserve", "insert", "assign",
    "append", "operator new", "operator new[]", "malloc", "calloc",
    "realloc", "strdup", "aligned_alloc", "make_unique", "make_shared",
    "to_string",
}


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self, root: str) -> str:
        rel = os.path.relpath(self.path, root)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment/string-literal bytes with spaces, preserving
    newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | dq | sq
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dq"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "sq"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("dq", "sq"):
            quote = '"' if state == "dq" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated; bail to code
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def source_files(root: str, subdir: str = "src") -> list[str]:
    base = os.path.join(root, subdir)
    found = []
    for dirpath, _dirnames, filenames in os.walk(base):
        for name in sorted(filenames):
            if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                found.append(os.path.join(dirpath, name))
    return found


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def function_body_after(stripped: str, marker_end: int) -> tuple[int, int] | None:
    """Returns (open_brace_offset, close_brace_offset) of the function body
    following a marker, or None. Skips over the signature (which may span
    lines and contain default-argument parens) to the first top-level '{'.
    A ';' before any '{' means the marker sits on a declaration."""
    depth = 0
    i = marker_end
    n = len(stripped)
    while i < n:
        c = stripped[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == ";" and depth == 0:
            return None
        elif c == "{" and depth == 0:
            break
        i += 1
    if i >= n:
        return None
    open_brace = i
    brace = 0
    while i < n:
        c = stripped[i]
        if c == "{":
            brace += 1
        elif c == "}":
            brace -= 1
            if brace == 0:
                return (open_brace, i)
        i += 1
    return None


# --- Rule: zero-alloc (token backend) --------------------------------------

def check_zero_alloc_text(path: str, raw: str, stripped: str) -> list[Finding]:
    findings = []
    for m in re.finditer(re.escape(MARKER), raw):
        # Marker offsets are identical in raw and stripped (stripping is
        # length-preserving), but the marker itself is blanked in
        # `stripped` — locate it in raw, scan the body in stripped.
        marker_line_end = raw.find("\n", m.end())
        if marker_line_end < 0:
            marker_line_end = len(raw)
        span = function_body_after(stripped, marker_line_end)
        if span is None:
            findings.append(Finding(
                path, line_of(raw, m.start()), "zero-alloc",
                "marker is not followed by a function definition"))
            continue
        body = stripped[span[0]:span[1] + 1]
        for pattern, what in ALLOC_TOKENS:
            hit = pattern.search(body)
            if hit:
                findings.append(Finding(
                    path, line_of(stripped, span[0] + hit.start()),
                    "zero-alloc",
                    f"{what} inside a diffreg:zero-alloc function"))
    return findings


# --- Rule: zero-alloc (libclang backend) ------------------------------------

def load_compile_flags(compile_commands: str | None) -> dict[str, list[str]]:
    if not compile_commands or not os.path.exists(compile_commands):
        return {}
    flags: dict[str, list[str]] = {}
    with open(compile_commands, encoding="utf-8") as f:
        for entry in json.load(f):
            args = entry.get("arguments")
            if args is None:
                args = entry.get("command", "").split()
            # Drop the compiler, -c/-o pairs and the source file itself.
            keep, skip = [], False
            for a in args[1:]:
                if skip:
                    skip = False
                    continue
                if a in ("-c", "-o"):
                    skip = True
                    continue
                if a == entry["file"] or a.endswith((".cpp", ".cc")):
                    continue
                keep.append(a)
            flags[os.path.abspath(entry["file"])] = keep
    return flags


def check_zero_alloc_clang(paths: list[str], root: str,
                           compile_commands: str | None) -> list[Finding]:
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return []
    try:
        index = cindex.Index.create()
    except Exception:
        return []  # libclang shared object missing; token backend covers us
    flag_map = load_compile_flags(compile_commands)
    default_flags = ["-std=c++20", "-x", "c++", "-I", os.path.join(root, "src")]
    findings = []
    for path in paths:
        raw = open(path, encoding="utf-8").read()
        if MARKER not in raw:
            continue
        marker_lines = {i + 1 for i, ln in enumerate(raw.splitlines())
                        if MARKER in ln}
        args = flag_map.get(os.path.abspath(path), default_flags)
        try:
            tu = index.parse(path, args=args)
        except cindex.TranslationUnitLoadError:
            continue
        from clang.cindex import CursorKind
        fn_kinds = (CursorKind.FUNCTION_DECL, CursorKind.CXX_METHOD,
                    CursorKind.FUNCTION_TEMPLATE, CursorKind.CONSTRUCTOR)

        def walk_alloc(node, fn_path):
            if node.kind == CursorKind.CXX_NEW_EXPR:
                findings.append(Finding(
                    fn_path, node.location.line, "zero-alloc",
                    "operator new inside a diffreg:zero-alloc function (AST)"))
            if node.kind == CursorKind.CALL_EXPR and \
                    node.spelling in CLANG_ALLOC_METHODS:
                findings.append(Finding(
                    fn_path, node.location.line, "zero-alloc",
                    f"call to allocating '{node.spelling}' inside a "
                    "diffreg:zero-alloc function (AST)"))
            for child in node.get_children():
                walk_alloc(child, fn_path)

        def walk(node):
            if node.kind in fn_kinds and node.is_definition() and \
                    node.location.file and \
                    os.path.samefile(node.location.file.name, path):
                start = node.extent.start.line
                # Marked iff a marker comment sits within the 3 lines
                # above the definition (doc comments may intervene).
                if any(l in marker_lines for l in range(start - 3, start)):
                    walk_alloc(node, path)
            for child in node.get_children():
                walk(child)

        walk(tu.cursor)
    return findings


# --- Rule: timings-plumbing --------------------------------------------------

# Counters whose timings_delta plumbing goes through a differently-named
# accessor rather than `member name minus trailing underscore`.
TIMINGS_ACCESSOR = {"seconds_": "get", "hidden_seconds_": "hidden"}


def extract_braced(stripped: str, start: int) -> str | None:
    """Body text from the first '{' at/after `start` to its matching '}'."""
    i = stripped.find("{", start)
    if i < 0:
        return None
    depth = 0
    for j in range(i, len(stripped)):
        if stripped[j] == "{":
            depth += 1
        elif stripped[j] == "}":
            depth -= 1
            if depth == 0:
                return stripped[i:j + 1]
    return None


def check_timings(root: str) -> list[Finding]:
    path = os.path.join(root, "src", "common", "timer.hpp")
    if not os.path.exists(path):
        return [Finding(path, 1, "timings-plumbing",
                        "src/common/timer.hpp not found")]
    raw = open(path, encoding="utf-8").read()
    stripped = strip_comments_and_strings(raw)

    class_m = re.search(r"\bclass\s+Timings\b", stripped)
    if not class_m:
        return [Finding(path, 1, "timings-plumbing", "class Timings not found")]
    class_body = extract_braced(stripped, class_m.end())
    if class_body is None:
        return [Finding(path, class_m.start(), "timings-plumbing",
                        "could not parse class Timings body")]

    members = re.findall(r"std::array<[^;]*?>\s+(\w+_)\s*\{\}\s*;", class_body)
    if not members:
        return [Finding(path, line_of(stripped, class_m.start()),
                        "timings-plumbing",
                        "no std::array counter members found in Timings")]

    def body_of(pattern: str, text: str) -> str | None:
        m = re.search(pattern, text)
        return extract_braced(text, m.end()) if m else None

    functions = {
        "clear()": body_of(r"\bvoid\s+clear\s*\(\s*\)", class_body),
        "operator+=": body_of(r"operator\+=\s*\(", class_body),
        "max_with()": body_of(r"\bvoid\s+max_with\s*\(", class_body),
        "timings_delta()": body_of(r"\bTimings\s+timings_delta\s*\(", stripped),
    }

    findings = []
    for fn_name, body in functions.items():
        if body is None:
            findings.append(Finding(path, 1, "timings-plumbing",
                                    f"{fn_name} not found"))
            continue
        for member in members:
            accessor = TIMINGS_ACCESSOR.get(member, member[:-1])
            if member in body:
                continue
            if fn_name == "timings_delta()" and re.search(
                    rf"\b{re.escape(accessor)}\s*\(", body):
                continue  # delta goes through the public accessors
            findings.append(Finding(
                path, line_of(stripped, class_m.start()), "timings-plumbing",
                f"Timings member '{member}' is not plumbed through {fn_name}"))
    return findings


# --- Rule: mpisim-throw ------------------------------------------------------

def comm_error_types(root: str) -> tuple[set[str], list[Finding]]:
    path = os.path.join(root, "src", "mpisim", "errors.hpp")
    if not os.path.exists(path):
        return set(), [Finding(path, 1, "mpisim-throw",
                               "src/mpisim/errors.hpp not found")]
    stripped = strip_comments_and_strings(open(path, encoding="utf-8").read())
    derives: dict[str, str] = {}
    for m in re.finditer(r"\bclass\s+(\w+)\s*:\s*public\s+([\w:]+)", stripped):
        derives[m.group(1)] = m.group(2).split("::")[-1]
    allowed = {"CommError"}
    changed = True
    while changed:
        changed = False
        for cls, base in derives.items():
            if base in allowed and cls not in allowed:
                allowed.add(cls)
                changed = True
    return allowed, []


def check_mpisim_throws(root: str) -> list[Finding]:
    allowed, findings = comm_error_types(root)
    if findings:
        return findings
    for path in source_files(root, os.path.join("src", "mpisim")):
        stripped = strip_comments_and_strings(
            open(path, encoding="utf-8").read())
        for m in re.finditer(r"\bthrow\b\s*([A-Za-z_][\w:<>]*)?", stripped):
            spelled = m.group(1)
            if not spelled:  # bare `throw;` rethrow
                continue
            base_name = re.sub(r"<.*", "", spelled).split("::")[-1]
            if base_name not in allowed:
                findings.append(Finding(
                    path, line_of(stripped, m.start()), "mpisim-throw",
                    f"throw of '{spelled}' under src/mpisim does not derive "
                    "from CommError"))
    return findings


# --- Rule: timekind-unused ---------------------------------------------------

def check_timekind(root: str) -> list[Finding]:
    path = os.path.join(root, "src", "common", "timer.hpp")
    if not os.path.exists(path):
        return [Finding(path, 1, "timekind-unused",
                        "src/common/timer.hpp not found")]
    raw = open(path, encoding="utf-8").read()
    stripped = strip_comments_and_strings(raw)
    enum_m = re.search(r"\benum\s+class\s+TimeKind\b[^{]*", stripped)
    if not enum_m:
        return [Finding(path, 1, "timekind-unused", "enum TimeKind not found")]
    enum_body = extract_braced(stripped, enum_m.end())
    if enum_body is None:
        return [Finding(path, 1, "timekind-unused",
                        "could not parse enum TimeKind body")]
    values = re.findall(r"\b(k\w+)\b", enum_body)

    referenced: set[str] = set()
    for src in source_files(root, "src") + source_files(root, "tools"):
        text = strip_comments_and_strings(open(src, encoding="utf-8").read())
        if src.endswith(os.path.join("common", "timer.hpp")):
            text = text.replace(enum_body, "")  # declaration doesn't count
        for m in re.finditer(r"\bTimeKind::(k\w+)", text):
            referenced.add(m.group(1))

    enum_line = line_of(stripped, enum_m.start())
    return [Finding(path, enum_line, "timekind-unused",
                    f"TimeKind::{v} is never referenced outside its "
                    "declaration")
            for v in values if v not in referenced]


# --- Driver ------------------------------------------------------------------

def run_all(root: str, compile_commands: str | None) -> list[Finding]:
    findings: list[Finding] = []
    paths = source_files(root, "src")
    for path in paths:
        raw = open(path, encoding="utf-8").read()
        if MARKER in raw:
            stripped = strip_comments_and_strings(raw)
            findings += check_zero_alloc_text(path, raw, stripped)
    findings += check_zero_alloc_clang(paths, root, compile_commands)
    findings += check_timings(root)
    findings += check_mpisim_throws(root)
    findings += check_timekind(root)
    # The AST backend may re-report a token-level hit; dedupe on
    # (path, rule, line) so the count stays stable across backends.
    seen = set()
    unique = []
    for f in findings:
        key = (f.path, f.rule, f.line)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def run_selftest(lint_dir: str) -> int:
    root = os.path.join(lint_dir, "selftest")
    findings = run_all(root, None)
    by_rule: dict[str, list[Finding]] = {r: [] for r in RULE_IDS}
    for f in findings:
        by_rule.setdefault(f.rule, []).append(f)
    ok = True
    for rule in RULE_IDS:
        got = by_rule.get(rule, [])
        if len(got) == 1:
            print(f"selftest: [{rule}] caught the seeded violation: "
                  f"{got[0].render(root)}")
        else:
            ok = False
            print(f"selftest: FAIL [{rule}] expected exactly 1 finding, "
                  f"got {len(got)}:", file=sys.stderr)
            for f in got:
                print("  " + f.render(root), file=sys.stderr)
    extra = [f for f in findings if f.rule not in RULE_IDS]
    if extra:
        ok = False
        for f in extra:
            print(f"selftest: FAIL unexpected rule id: {f.render(root)}",
                  file=sys.stderr)
    print("selftest: " + ("PASS" if ok else "FAIL"))
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels up from here)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for the libclang backend")
    parser.add_argument("--selftest", action="store_true",
                        help="run against the seeded selftest tree")
    args = parser.parse_args()

    lint_dir = os.path.dirname(os.path.abspath(__file__))
    if args.selftest:
        return run_selftest(lint_dir)

    root = args.root or os.path.dirname(os.path.dirname(lint_dir))
    compile_commands = args.compile_commands
    if compile_commands is None:
        candidate = os.path.join(root, "build", "compile_commands.json")
        if os.path.exists(candidate):
            compile_commands = candidate

    findings = run_all(root, compile_commands)
    for f in findings:
        print(f.render(root))
    if findings:
        print(f"contract_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("contract_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
