// FFT trajectory reporter: times the distributed forward/inverse transforms
// and dumps one JSON record per configuration (size, process grid, wall
// times, comm bytes/messages/alltoallv exchanges) to BENCH_fft.json, so CI
// runs of successive PRs can track both the kernel speed and the message
// count of the hottest path in the solver.
//
// Usage: fft_report [output.json]
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "fft/fft3d_distributed.hpp"
#include "grid/decomposition.hpp"
#include "mpisim/communicator.hpp"

using namespace diffreg;

namespace {

struct Record {
  index_t n = 0;
  int p = 0;
  double forward_ms = 0;
  double inverse_ms = 0;
  std::uint64_t comm_bytes = 0;
  std::uint64_t comm_messages = 0;
  std::uint64_t exchanges = 0;
};

Record run_case(index_t n, int p, int reps) {
  Record rec;
  rec.n = n;
  rec.p = p;
  const Int3 dims{n, n, n};

  // Slowest-rank wall times and counters, like the paper's tables.
  double fwd_max = 0, inv_max = 0;
  Timings agg;
  auto timings = mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims);
    fft::DistributedFft3d fft(decomp);
    std::vector<real_t> x(fft.local_real_size(), 1.0);
    for (index_t i = 0; i < fft.local_real_size(); ++i)
      x[i] = static_cast<real_t>((i * 2654435761u) % 1000) / 1000.0;
    std::vector<complex_t> spec(fft.local_spectral_size());

    fft.forward(x, spec);  // warm-up
    fft.inverse(spec, x);
    comm.timings().clear();

    WallTimer t;
    for (int r = 0; r < reps; ++r) fft.forward(x, spec);
    const double fwd = t.seconds() / reps;
    t.reset();
    for (int r = 0; r < reps; ++r) fft.inverse(spec, x);
    const double inv = t.seconds() / reps;

    static std::mutex mu;
    std::scoped_lock lock(mu);
    fwd_max = std::max(fwd_max, fwd);
    inv_max = std::max(inv_max, inv);
  });
  for (const auto& t : timings) agg += t;

  rec.forward_ms = fwd_max * 1e3;
  rec.inverse_ms = inv_max * 1e3;
  // Per-rank, per-transform averages, so records are comparable across rank
  // counts (and against the 2-exchanges-per-transform invariant the tests
  // assert).
  const std::uint64_t norm = 2ull * reps * static_cast<std::uint64_t>(p);
  rec.comm_bytes = agg.bytes(TimeKind::kFftComm) / norm;
  rec.comm_messages = agg.messages(TimeKind::kFftComm) / norm;
  rec.exchanges = agg.exchanges(TimeKind::kFftComm) / norm;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fft.json";

  std::vector<Record> records;
  records.push_back(run_case(32, 1, 20));
  records.push_back(run_case(64, 1, 5));
  records.push_back(run_case(32, 4, 10));
  records.push_back(run_case(64, 4, 3));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "fft_report: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fft\",\n  \"records\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "    {\"size\": %lld, \"ranks\": %d, \"forward_ms\": %.4f, "
                 "\"inverse_ms\": %.4f, \"comm_bytes_per_rank_transform\": "
                 "%llu, \"comm_messages_per_rank_transform\": %llu, "
                 "\"alltoallv_exchanges_per_rank_transform\": %llu}%s\n",
                 static_cast<long long>(r.n), r.p, r.forward_ms, r.inverse_ms,
                 static_cast<unsigned long long>(r.comm_bytes),
                 static_cast<unsigned long long>(r.comm_messages),
                 static_cast<unsigned long long>(r.exchanges),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  for (const Record& r : records)
    std::printf(
        "fft %lld^3 p=%d: forward %.3f ms, inverse %.3f ms, "
        "%llu B / %llu msgs / %llu exchanges per rank per transform\n",
        static_cast<long long>(r.n), r.p, r.forward_ms, r.inverse_ms,
        static_cast<unsigned long long>(r.comm_bytes),
        static_cast<unsigned long long>(r.comm_messages),
        static_cast<unsigned long long>(r.exchanges));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
