// FFT trajectory reporter: times the distributed forward/inverse transforms
// and dumps one JSON record per configuration (size, process grid, wall
// times, comm bytes/messages/alltoallv exchanges) to BENCH_fft.json, so CI
// runs of successive PRs can track both the kernel speed and the message
// count of the hottest path in the solver.
//
// Usage: fft_report [--wire fp64|fp32] [output.json]
// --wire fp32 runs the same cases with the fp32 wire format enabled on the
// transpose exchanges (the mixed-precision leg; bench name "fft_fp32wire").
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "fft/fft3d_distributed.hpp"
#include "grid/decomposition.hpp"
#include "mpisim/communicator.hpp"

using namespace diffreg;

namespace {

struct Record {
  index_t n = 0;
  int p = 0;
  bool overlap = false;
  bool guard = false;
  double forward_ms = 0;
  double inverse_ms = 0;
  double hidden_ratio = 0;  // hidden / (hidden + timed) FFT comm time
  std::uint64_t comm_bytes = 0;
  std::uint64_t comm_messages = 0;
  std::uint64_t exchanges = 0;
};

Record run_case(index_t n, int p, int reps, WirePrecision wire,
                bool overlap = false, bool guard = false) {
  Record rec;
  rec.n = n;
  rec.p = p;
  rec.overlap = overlap;
  rec.guard = guard;
  const bench::FftCaseResult res =
      bench::run_fft_trajectory_case(n, p, reps, wire, overlap, guard);
  rec.forward_ms = res.forward_ms;
  rec.inverse_ms = res.inverse_ms;
  // Per-rank, per-transform averages, so records are comparable across rank
  // counts (and against the 2-exchanges-per-transform invariant the tests
  // assert).
  const std::uint64_t norm = 2ull * reps * static_cast<std::uint64_t>(p);
  rec.comm_bytes = res.agg.bytes(TimeKind::kFftComm) / norm;
  rec.comm_messages = res.agg.messages(TimeKind::kFftComm) / norm;
  rec.exchanges = res.agg.exchanges(TimeKind::kFftComm) / norm;
  rec.hidden_ratio = res.agg.overlap_efficiency(TimeKind::kFftComm);
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  WirePrecision wire = WirePrecision::kF64;
  std::string out_arg;
  if (!bench::parse_wire_args(argc, argv, "fft_report", wire, out_arg))
    return 1;
  const bool fp32 = wire == WirePrecision::kF32;
  const std::string out_path =
      !out_arg.empty()
          ? out_arg
          : (fp32 ? "BENCH_fft_fp32wire.json" : "BENCH_fft.json");

  std::vector<Record> records;
  records.push_back(run_case(32, 1, 20, wire));
  records.push_back(run_case(64, 1, 5, wire));
  records.push_back(run_case(32, 4, 10, wire));
  records.push_back(run_case(64, 4, 3, wire));
  // Overlap legs of the multi-rank cases: same schedule, nonblocking
  // transposes with the self unpack under flight ("case": "overlap" keeps
  // their identity distinct from the blocking records).
  records.push_back(run_case(32, 4, 10, wire, /*overlap=*/true));
  records.push_back(run_case(64, 4, 3, wire, /*overlap=*/true));
  // Guard legs of the multi-rank cases: one collective validate_finite
  // sweep per transform, pricing the --guard safeguard on the hottest
  // kernel ("case": "guard"). Comm counters must match the base records.
  records.push_back(run_case(32, 4, 10, wire, /*overlap=*/false,
                             /*guard=*/true));
  records.push_back(run_case(64, 4, 3, wire, /*overlap=*/false,
                             /*guard=*/true));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "fft_report: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"flags\": \"%s\",\n"
               "  \"records\": [\n",
               fp32 ? "fft_fp32wire" : "fft", bench::arch_flags());
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    char extra[96] = "";
    if (r.overlap)
      std::snprintf(extra, sizeof extra,
                    "\"case\": \"overlap\", \"hidden_comm_ratio\": %.4f, ",
                    r.hidden_ratio);
    else if (r.guard)
      std::snprintf(extra, sizeof extra, "\"case\": \"guard\", ");
    std::fprintf(f,
                 "    {%s\"size\": %lld, \"ranks\": %d, \"forward_ms\": %.4f, "
                 "\"inverse_ms\": %.4f, \"comm_bytes_per_rank_transform\": "
                 "%llu, \"comm_messages_per_rank_transform\": %llu, "
                 "\"alltoallv_exchanges_per_rank_transform\": %llu}%s\n",
                 extra, static_cast<long long>(r.n), r.p, r.forward_ms,
                 r.inverse_ms, static_cast<unsigned long long>(r.comm_bytes),
                 static_cast<unsigned long long>(r.comm_messages),
                 static_cast<unsigned long long>(r.exchanges),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  for (const Record& r : records)
    std::printf(
        "fft %lld^3 p=%d%s%s: forward %.3f ms, inverse %.3f ms, "
        "%llu B / %llu msgs / %llu exchanges per rank per transform\n",
        static_cast<long long>(r.n), r.p, r.overlap ? " overlap" : "",
        r.guard ? " guard" : "",
        r.forward_ms, r.inverse_ms,
        static_cast<unsigned long long>(r.comm_bytes),
        static_cast<unsigned long long>(r.comm_messages),
        static_cast<unsigned long long>(r.exchanges));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
