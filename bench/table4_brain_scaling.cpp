// Reproduces the structure of Table IV (paper): strong scaling on the
// real-world brain problem (NIREP na01/na02, 256x300x256, 2 Newton
// iterations, beta = 1e-2). Here: procedural brain phantoms on a 48x56x48
// grid — the same anisotropic, non-power-of-two shape class (56 exercises
// the Bluestein FFT path exactly like 300 does) — see DESIGN.md.
#include "bench_common.hpp"

using namespace diffreg;
using namespace diffreg::bench;

int main() {
  print_scaling_header(
      "Table IV (structure): brain (phantom) registration strong scaling, "
      "beta=1e-2, 2 Newton iterations");

  int id = 25;  // numbering follows the paper's Table IV (#25...)
  for (int ranks : {1, 2, 4}) {
    CaseConfig config;
    config.dims = {48, 56, 48};
    config.ranks = ranks;
    config.workload = Workload::kBrain;
    config.options.beta = 1e-2;
    config.options.gtol = 1e-2;
    config.options.max_newton_iters = 2;  // as in the paper's Table IV
    const CaseResult r = run_case(config);
    print_scaling_row(id++, config.dims, ranks, r);
  }

  std::printf(
      "\nExpected shape (paper): the whole problem fits on one node and the\n"
      "wall-clock time drops as ranks are added, with FFT and interpolation\n"
      "communication/execution falling accordingly (Table IV #25-29).\n");
  return 0;
}
