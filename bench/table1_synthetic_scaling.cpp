// Reproduces the structure of Table I (paper): computational performance of
// the solver on the synthetic problem of Fig. 5 — compressible case — as a
// function of grid size and task count. Columns: time to solution, FFT
// communication/execution, interpolation communication/execution.
//
// Paper setup: beta = 1e-2, nt = 4, gtol = 1e-2, Gauss-Newton; grids
// 64^3-512^3 on up to 1024 tasks (Maverick). Here: grids 32^3-64^3 on up to
// 4 simulated ranks (2 physical cores) — see DESIGN.md.
#include "bench_common.hpp"

using namespace diffreg;
using namespace diffreg::bench;

int main() {
  print_scaling_header(
      "Table I (structure): synthetic registration, compressible, "
      "beta=1e-2, nt=4, gtol=1e-2, Gauss-Newton");

  struct Entry {
    Int3 dims;
    int ranks;
  };
  const Entry entries[] = {
      {{32, 32, 32}, 1}, {{32, 32, 32}, 2}, {{32, 32, 32}, 4},
      {{48, 48, 48}, 1}, {{48, 48, 48}, 2}, {{48, 48, 48}, 4},
      {{64, 64, 64}, 2}, {{64, 64, 64}, 4},
  };

  int id = 1;
  for (const Entry& e : entries) {
    CaseConfig config;
    config.dims = e.dims;
    config.ranks = e.ranks;
    config.options.beta = 1e-2;
    config.options.gtol = 1e-2;
    config.options.nt = 4;
    config.options.max_newton_iters = 10;
    const CaseResult r = run_case(config);
    print_scaling_row(id++, e.dims, e.ranks, r);
  }

  std::printf(
      "\nExpected shape (paper): for fixed grid, execution times drop with\n"
      "tasks while communication grows in share; interpolation dominates\n"
      "execution; the relative residual is independent of the task count.\n");
  return 0;
}
