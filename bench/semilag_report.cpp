// Semi-Lagrangian transport trajectory reporter: times the plan build
// (departure points + scatter phase), the cached-plan solves (state and the
// Gauss-Newton Hessian-matvec transports), and the batched vector
// interpolation, and dumps one JSON record per configuration (size, ranks,
// wall times, interp comm bytes/messages/alltoallv exchanges per matvec) to
// BENCH_semilag.json. Together with BENCH_fft.json this feeds the CI
// bench-regression gate (bench/check_regression.py): wall times are gated
// with a tolerance, the comm counters exactly.
//
// Usage: semilag_report [--wire fp64|fp32] [output.json]
// --wire fp32 runs the same cases with the fp32 wire format on the ghost
// halos and the interpolation value scatter (the mixed-precision leg; bench
// name "semilag_fp32wire").
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "imaging/synthetic.hpp"
#include "mpisim/communicator.hpp"
#include "semilag/transport.hpp"

using namespace diffreg;

namespace {

struct Record {
  index_t n = 0;
  int p = 0;
  double plan_build_ms = 0;   // set_velocity of a fresh velocity
  double state_ms = 0;        // solve_state (nt cached-plan steps)
  double matvec_ms = 0;       // incr. state + GN incr. adjoint transports
  double interp_vec3_ms = 0;  // one batched 3-component interpolation
  bool overlap = false;
  bool guard = false;
  double hidden_ratio = 0;  // hidden / (hidden + timed) interp comm time
  std::uint64_t comm_bytes = 0;     // interp comm per rank per matvec
  std::uint64_t comm_messages = 0;
  std::uint64_t exchanges = 0;      // alltoallv+alltoall per rank per matvec
};

Record run_case(index_t n, int p, int reps, WirePrecision wire,
                bool overlap = false, bool guard = false) {
  Record rec;
  rec.n = n;
  rec.p = p;
  rec.overlap = overlap;
  rec.guard = guard;
  const bench::SemilagCaseResult res =
      bench::run_semilag_trajectory_case(n, p, reps, wire, overlap, guard);
  rec.plan_build_ms = res.plan_build_ms;
  rec.state_ms = res.state_ms;
  rec.matvec_ms = res.matvec_ms;
  rec.interp_vec3_ms = res.interp_vec3_ms;
  // Per-rank, per-matvec averages (deterministic: the plan's comm schedule
  // is fixed by the velocity, not by timing).
  const std::uint64_t norm =
      static_cast<std::uint64_t>(reps) * static_cast<std::uint64_t>(p);
  rec.comm_bytes = res.matvec_agg.bytes(TimeKind::kInterpComm) / norm;
  rec.comm_messages = res.matvec_agg.messages(TimeKind::kInterpComm) / norm;
  rec.exchanges = res.matvec_agg.exchanges(TimeKind::kInterpComm) / norm;
  rec.hidden_ratio = res.matvec_agg.overlap_efficiency(TimeKind::kInterpComm);
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  WirePrecision wire = WirePrecision::kF64;
  std::string out_arg;
  if (!bench::parse_wire_args(argc, argv, "semilag_report", wire, out_arg))
    return 1;
  const bool fp32 = wire == WirePrecision::kF32;
  const std::string out_path =
      !out_arg.empty()
          ? out_arg
          : (fp32 ? "BENCH_semilag_fp32wire.json" : "BENCH_semilag.json");

  std::vector<Record> records;
  records.push_back(run_case(32, 1, 10, wire));
  records.push_back(run_case(64, 1, 3, wire));
  records.push_back(run_case(32, 4, 5, wire));
  records.push_back(run_case(64, 4, 2, wire));
  // Overlap legs of the multi-rank cases: SELF interpolation under the
  // value-exchange flight, halo second-slab pack under the first halo
  // ("case": "overlap" keeps their identity distinct).
  records.push_back(run_case(32, 4, 5, wire, /*overlap=*/true));
  records.push_back(run_case(64, 4, 2, wire, /*overlap=*/true));
  // Guard legs of the multi-rank cases: one collective validate_finite per
  // timed solve/matvec/interp, pricing the --guard safeguard on the
  // transport path ("case": "guard"). Comm counters must match the base.
  records.push_back(run_case(32, 4, 5, wire, /*overlap=*/false,
                             /*guard=*/true));
  records.push_back(run_case(64, 4, 2, wire, /*overlap=*/false,
                             /*guard=*/true));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "semilag_report: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"flags\": \"%s\",\n"
               "  \"records\": [\n",
               fp32 ? "semilag_fp32wire" : "semilag", bench::arch_flags());
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    char extra[96] = "";
    if (r.overlap)
      std::snprintf(extra, sizeof extra,
                    "\"case\": \"overlap\", \"hidden_comm_ratio\": %.4f, ",
                    r.hidden_ratio);
    else if (r.guard)
      std::snprintf(extra, sizeof extra, "\"case\": \"guard\", ");
    std::fprintf(
        f,
        "    {%s\"size\": %lld, \"ranks\": %d, \"plan_build_ms\": %.4f, "
        "\"state_ms\": %.4f, \"matvec_ms\": %.4f, \"interp_vec3_ms\": %.4f, "
        "\"interp_comm_bytes_per_rank_matvec\": %llu, "
        "\"interp_comm_messages_per_rank_matvec\": %llu, "
        "\"interp_exchanges_per_rank_matvec\": %llu}%s\n",
        extra, static_cast<long long>(r.n), r.p, r.plan_build_ms, r.state_ms,
        r.matvec_ms, r.interp_vec3_ms,
        static_cast<unsigned long long>(r.comm_bytes),
        static_cast<unsigned long long>(r.comm_messages),
        static_cast<unsigned long long>(r.exchanges),
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  for (const Record& r : records)
    std::printf(
        "semilag %lld^3 p=%d%s%s: plan build %.3f ms, state %.3f ms, matvec "
        "%.3f ms, vec3 interp %.3f ms, %llu B / %llu msgs / %llu exchanges "
        "per rank per matvec\n",
        static_cast<long long>(r.n), r.p, r.overlap ? " overlap" : "",
        r.guard ? " guard" : "",
        r.plan_build_ms, r.state_ms,
        r.matvec_ms, r.interp_vec3_ms,
        static_cast<unsigned long long>(r.comm_bytes),
        static_cast<unsigned long long>(r.comm_messages),
        static_cast<unsigned long long>(r.exchanges));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
