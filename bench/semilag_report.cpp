// Semi-Lagrangian transport trajectory reporter: times the plan build
// (departure points + scatter phase), the cached-plan solves (state and the
// Gauss-Newton Hessian-matvec transports), and the batched vector
// interpolation, and dumps one JSON record per configuration (size, ranks,
// wall times, interp comm bytes/messages/alltoallv exchanges per matvec) to
// BENCH_semilag.json. Together with BENCH_fft.json this feeds the CI
// bench-regression gate (bench/check_regression.py): wall times are gated
// with a tolerance, the comm counters exactly.
//
// Usage: semilag_report [output.json]
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "imaging/synthetic.hpp"
#include "mpisim/communicator.hpp"
#include "semilag/transport.hpp"

using namespace diffreg;

namespace {

struct Record {
  index_t n = 0;
  int p = 0;
  double plan_build_ms = 0;   // set_velocity of a fresh velocity
  double state_ms = 0;        // solve_state (nt cached-plan steps)
  double matvec_ms = 0;       // incr. state + GN incr. adjoint transports
  double interp_vec3_ms = 0;  // one batched 3-component interpolation
  std::uint64_t comm_bytes = 0;     // interp comm per rank per matvec
  std::uint64_t comm_messages = 0;
  std::uint64_t exchanges = 0;      // alltoallv+alltoall per rank per matvec
};

Record run_case(index_t n, int p, int reps) {
  Record rec;
  rec.n = n;
  rec.p = p;
  const Int3 dims{n, n, n};

  double build_max = 0, state_max = 0, matvec_max = 0, vec3_max = 0;
  Timings agg;
  std::mutex mu;
  mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims);
    spectral::SpectralOps ops(decomp);
    semilag::TransportConfig tc;
    tc.nt = 4;
    semilag::Transport transport(ops, tc);

    auto rho0 = imaging::synthetic_template(decomp);
    auto va = imaging::synthetic_velocity(decomp, 0.5);
    auto vb = imaging::synthetic_velocity(decomp, 0.52);
    auto w = imaging::synthetic_velocity_divfree(decomp, 0.3);

    // Warm-up: builds the plans and grows every scratch buffer once.
    grid::ScalarField rho_tilde1;
    grid::VectorField b, vec_out;
    transport.set_velocity(va);
    transport.solve_state(rho0);
    transport.solve_incremental_state(w, rho_tilde1);
    transport.solve_incremental_adjoint_gn(rho_tilde1, b);
    transport.interp_vec_at_forward_points(w, vec_out);

    // Plan build: alternate two velocities so every call rebuilds (a
    // repeated velocity would hit the plan cache).
    WallTimer t;
    for (int r = 0; r < reps; ++r)
      transport.set_velocity(r % 2 == 0 ? vb : va);
    const double build = t.seconds() / reps;

    t.reset();
    for (int r = 0; r < reps; ++r) transport.solve_state(rho0);
    const double state = t.seconds() / reps;

    const Timings before = comm.timings();
    t.reset();
    for (int r = 0; r < reps; ++r) {
      transport.solve_incremental_state(w, rho_tilde1);
      transport.solve_incremental_adjoint_gn(rho_tilde1, b);
    }
    const double matvec = t.seconds() / reps;
    const Timings matvec_delta = timings_delta(before, comm.timings());

    t.reset();
    for (int r = 0; r < reps; ++r)
      transport.interp_vec_at_forward_points(w, vec_out);
    const double vec3 = t.seconds() / reps;

    std::scoped_lock lock(mu);
    build_max = std::max(build_max, build);
    state_max = std::max(state_max, state);
    matvec_max = std::max(matvec_max, matvec);
    vec3_max = std::max(vec3_max, vec3);
    agg += matvec_delta;
  });

  rec.plan_build_ms = build_max * 1e3;
  rec.state_ms = state_max * 1e3;
  rec.matvec_ms = matvec_max * 1e3;
  rec.interp_vec3_ms = vec3_max * 1e3;
  // Per-rank, per-matvec averages (deterministic: the plan's comm schedule
  // is fixed by the velocity, not by timing).
  const std::uint64_t norm =
      static_cast<std::uint64_t>(reps) * static_cast<std::uint64_t>(p);
  rec.comm_bytes = agg.bytes(TimeKind::kInterpComm) / norm;
  rec.comm_messages = agg.messages(TimeKind::kInterpComm) / norm;
  rec.exchanges = agg.exchanges(TimeKind::kInterpComm) / norm;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_semilag.json";

  std::vector<Record> records;
  records.push_back(run_case(32, 1, 10));
  records.push_back(run_case(64, 1, 3));
  records.push_back(run_case(32, 4, 5));
  records.push_back(run_case(64, 4, 2));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "semilag_report: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"semilag\",\n  \"records\": [\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(
        f,
        "    {\"size\": %lld, \"ranks\": %d, \"plan_build_ms\": %.4f, "
        "\"state_ms\": %.4f, \"matvec_ms\": %.4f, \"interp_vec3_ms\": %.4f, "
        "\"interp_comm_bytes_per_rank_matvec\": %llu, "
        "\"interp_comm_messages_per_rank_matvec\": %llu, "
        "\"interp_exchanges_per_rank_matvec\": %llu}%s\n",
        static_cast<long long>(r.n), r.p, r.plan_build_ms, r.state_ms,
        r.matvec_ms, r.interp_vec3_ms,
        static_cast<unsigned long long>(r.comm_bytes),
        static_cast<unsigned long long>(r.comm_messages),
        static_cast<unsigned long long>(r.exchanges),
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  for (const Record& r : records)
    std::printf(
        "semilag %lld^3 p=%d: plan build %.3f ms, state %.3f ms, matvec "
        "%.3f ms, vec3 interp %.3f ms, %llu B / %llu msgs / %llu exchanges "
        "per rank per matvec\n",
        static_cast<long long>(r.n), r.p, r.plan_build_ms, r.state_ms,
        r.matvec_ms, r.interp_vec3_ms,
        static_cast<unsigned long long>(r.comm_bytes),
        static_cast<unsigned long long>(r.comm_messages),
        static_cast<unsigned long long>(r.exchanges));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
