// Reproduces Fig. 1 (paper): rigid registration removes the bulk pose
// difference but leaves a large intensity residual; deformable (LDDR)
// registration shrinks it much further.
//
// Workload: two brain phantoms (different anatomy), the template
// additionally rotated and shifted by a known rigid transform. We report
// the residual norm (i) before registration, (ii) after the rigid baseline,
// (iii) after deformable registration on the rigidly aligned pair.
#include "bench_common.hpp"
#include "grid/field_io.hpp"

using namespace diffreg;
using namespace diffreg::bench;

int main() {
  const Int3 dims{32, 36, 32};
  std::printf("Fig. 1 (structure): rigid vs deformable registration\n");

  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims);
    auto rho_r_local = imaging::brain_phantom(decomp, 1);
    auto rho_t_local = imaging::brain_phantom(decomp, 2);

    // Gather and apply a known rigid misalignment to the template.
    auto rho_r = grid::gather_to_all(decomp, rho_r_local);
    auto rho_t0 = grid::gather_to_all(decomp, rho_t_local);
    core::RigidRegistration rigid(dims);
    core::RigidRegistration::Params misalign;
    misalign.angles = {0.12, -0.08, 0.1};
    misalign.translation = {0.3, -0.2, 0.25};
    std::vector<real_t> rho_t_full;
    rigid.apply(rho_t0, misalign, rho_t_full);

    // (i) initial residual, (ii) rigid baseline (serial, rank 0 computes,
    // everyone gets the aligned template).
    core::RigidRegistration::Result rr;
    std::vector<real_t> aligned;
    if (comm.is_root()) {
      rr = rigid.run(rho_t_full, rho_r, 150);
      rigid.apply(rho_t_full, rr.params, aligned);
    } else {
      aligned.resize(dims.prod());
    }
    comm.broadcast(aligned, 0);

    // (iii) deformable registration on the rigidly aligned pair.
    auto aligned_local = grid::scatter_from_root(
        decomp, comm.is_root() ? std::span<const real_t>(aligned)
                               : std::span<const real_t>());
    // Recompute residual in the distributed norm for consistency.
    core::RegistrationOptions opt;
    opt.beta = 1e-3;
    opt.gtol = 1e-2;
    opt.max_newton_iters = 12;
    core::RegistrationSolver solver(decomp, opt);
    auto result = solver.run(aligned_local, rho_r_local);

    if (comm.is_root()) {
      std::printf("  residual before registration : %10.4f (1.00x)\n",
                  rr.initial_residual);
      std::printf("  residual after rigid         : %10.4f (%.2fx)\n",
                  rr.final_residual,
                  rr.final_residual / rr.initial_residual);
      const real_t deformable =
          result.final_residual_norm / result.initial_residual_norm *
          rr.final_residual;
      std::printf("  residual after deformable    : %10.4f (%.2fx)\n",
                  deformable, deformable / rr.initial_residual);
      std::printf("  deformable map: det(grad y) in [%.3f, %.3f]\n",
                  result.min_det, result.max_det);
      std::printf(
          "\nExpected shape (paper Fig. 1): rigid < before, deformable <<\n"
          "rigid — only the deformable map removes the anatomy mismatch.\n");
    }
  });
  return 0;
}
