// Reproduces the structure of Table II (paper): the largest synthetic runs
// (512^3 and 1024^3 on up to 2048 tasks of Stampede). Here the "large" grid
// is 96^3 (the largest that keeps this binary under ~2 minutes on 2 cores);
// the paper's observation to reproduce is that the solve still completes at
// the largest size and that interpolation execution dominates the runtime.
#include "bench_common.hpp"

using namespace diffreg;
using namespace diffreg::bench;

int main() {
  print_scaling_header(
      "Table II (structure): large synthetic runs, compressible, "
      "beta=1e-2, nt=4, 2 Newton iterations");

  struct Entry {
    Int3 dims;
    int ranks;
  };
  const Entry entries[] = {
      {{96, 96, 96}, 2},
      {{96, 96, 96}, 4},
  };

  int id = 14;  // numbering follows the paper's Table II (#14...)
  for (const Entry& e : entries) {
    CaseConfig config;
    config.dims = e.dims;
    config.ranks = e.ranks;
    config.options.beta = 1e-2;
    config.options.gtol = 1e-2;
    config.options.nt = 4;
    config.options.max_newton_iters = 2;  // scaling run, fixed Newton steps
    const CaseResult r = run_case(config);
    print_scaling_row(id++, e.dims, e.ranks, r);
  }

  std::printf(
      "\nExpected shape (paper): time to solution decreases with tasks;\n"
      "interpolation execution is the largest single component (~50%% of\n"
      "the total), matching Table II's 1024^3 rows.\n");
  return 0;
}
