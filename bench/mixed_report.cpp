// Mixed-precision bench leg: runs the fp32-wire variants of the FFT and
// semi-Lagrangian trajectory cases — the SAME shared run cases
// (bench_common.hpp) fft_report and semilag_report drive at fp64, with
// WirePrecision::kF32 on every exchange — and dumps BENCH_mixed.json for
// the CI bench-regression gate.
//
// Field classes (bench/check_regression.py): wall times (*_ms) get a
// tolerance; the FFT wire/saved byte counters end in "_bytes" and are gated
// EXACTLY (they are deterministic properties of the transform schedule);
// the interpolation byte counters keep the small-tolerance "bytes" class
// because departure-point ownership is a floating-point classification.
//
// Usage: mixed_report [output.json]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"

using namespace diffreg;

namespace {

struct FftRecord {
  index_t n = 0;
  int p = 0;
  double forward_ms = 0;
  double inverse_ms = 0;
  std::uint64_t wire_bytes = 0;   // per rank per transform, post-conversion
  std::uint64_t saved_bytes = 0;  // per rank per transform, kept off the wire
};

FftRecord run_fft_case(index_t n, int p, int reps) {
  FftRecord rec;
  rec.n = n;
  rec.p = p;
  const bench::FftCaseResult res =
      bench::run_fft_trajectory_case(n, p, reps, WirePrecision::kF32);
  rec.forward_ms = res.forward_ms;
  rec.inverse_ms = res.inverse_ms;
  const std::uint64_t norm = 2ull * reps * static_cast<std::uint64_t>(p);
  rec.wire_bytes = res.agg.bytes(TimeKind::kFftComm) / norm;
  rec.saved_bytes = res.agg.saved_bytes(TimeKind::kFftComm) / norm;
  return rec;
}

struct SemilagRecord {
  index_t n = 0;
  int p = 0;
  double state_ms = 0;
  double matvec_ms = 0;
  std::uint64_t comm_bytes = 0;   // interp wire bytes per rank per matvec
  std::uint64_t saved_bytes = 0;  // per rank per matvec
};

SemilagRecord run_semilag_case(index_t n, int p, int reps) {
  SemilagRecord rec;
  rec.n = n;
  rec.p = p;
  const bench::SemilagCaseResult res =
      bench::run_semilag_trajectory_case(n, p, reps, WirePrecision::kF32);
  rec.state_ms = res.state_ms;
  rec.matvec_ms = res.matvec_ms;
  const std::uint64_t norm =
      static_cast<std::uint64_t>(reps) * static_cast<std::uint64_t>(p);
  rec.comm_bytes = res.matvec_agg.bytes(TimeKind::kInterpComm) / norm;
  rec.saved_bytes = res.matvec_agg.saved_bytes(TimeKind::kInterpComm) / norm;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_mixed.json";

  std::vector<FftRecord> ffts;
  ffts.push_back(run_fft_case(64, 1, 5));
  ffts.push_back(run_fft_case(64, 4, 3));
  std::vector<SemilagRecord> semis;
  semis.push_back(run_semilag_case(32, 4, 5));
  semis.push_back(run_semilag_case(64, 4, 2));

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "mixed_report: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"mixed\",\n  \"flags\": \"%s\",\n"
               "  \"records\": [\n",
               bench::arch_flags());
  for (const FftRecord& r : ffts)
    std::fprintf(
        f,
        "    {\"case\": \"fft_fp32wire\", \"size\": %lld, \"ranks\": %d, "
        "\"forward_ms\": %.4f, \"inverse_ms\": %.4f, "
        "\"fft_wire_bytes\": %llu, \"fft_saved_bytes\": %llu},\n",
        static_cast<long long>(r.n), r.p, r.forward_ms, r.inverse_ms,
        static_cast<unsigned long long>(r.wire_bytes),
        static_cast<unsigned long long>(r.saved_bytes));
  for (size_t i = 0; i < semis.size(); ++i) {
    const SemilagRecord& r = semis[i];
    std::fprintf(
        f,
        "    {\"case\": \"semilag_fp32wire\", \"size\": %lld, \"ranks\": %d, "
        "\"state_ms\": %.4f, \"matvec_ms\": %.4f, "
        "\"interp_comm_bytes_per_rank_matvec\": %llu, "
        "\"interp_saved_bytes_per_rank_matvec\": %llu}%s\n",
        static_cast<long long>(r.n), r.p, r.state_ms, r.matvec_ms,
        static_cast<unsigned long long>(r.comm_bytes),
        static_cast<unsigned long long>(r.saved_bytes),
        i + 1 < semis.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  for (const FftRecord& r : ffts)
    std::printf("mixed fft %lld^3 p=%d: fwd %.3f ms, inv %.3f ms, "
                "%llu wire B / %llu saved B per rank per transform\n",
                static_cast<long long>(r.n), r.p, r.forward_ms, r.inverse_ms,
                static_cast<unsigned long long>(r.wire_bytes),
                static_cast<unsigned long long>(r.saved_bytes));
  for (const SemilagRecord& r : semis)
    std::printf("mixed semilag %lld^3 p=%d: state %.3f ms, matvec %.3f ms, "
                "%llu wire B / %llu saved B per rank per matvec\n",
                static_cast<long long>(r.n), r.p, r.state_ms, r.matvec_ms,
                static_cast<unsigned long long>(r.comm_bytes),
                static_cast<unsigned long long>(r.saved_bytes));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
