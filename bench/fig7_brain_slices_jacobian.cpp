// Reproduces Fig. 7 (paper): slice-wise view of the brain registration —
// per-slice residual before/after and the pointwise det(grad y) map with
// the diffeomorphism check (all values strictly positive; the paper's color
// scale is [0, 2]).
#include "bench_common.hpp"
#include "grid/field_io.hpp"
#include "imaging/io.hpp"

using namespace diffreg;
using namespace diffreg::bench;

int main() {
  const Int3 dims{48, 56, 48};
  std::printf("Fig. 7 (structure): brain slices and Jacobian map\n");

  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims);
    auto rho_r = imaging::brain_phantom(decomp, 1);
    auto rho_t = imaging::brain_phantom(decomp, 2);

    core::RegistrationOptions opt;
    opt.beta = 1e-3;
    opt.gtol = 1e-2;
    opt.max_newton_iters = 15;
    core::RegistrationSolver solver(decomp, opt);
    auto result = solver.run(rho_t, rho_r);

    grid::ScalarField deformed, det;
    solver.deform_template(rho_t, result.velocity, deformed);
    solver.jacobian_field(result.velocity, det);

    auto full_t = grid::gather_to_root(decomp, rho_t);
    auto full_r = grid::gather_to_root(decomp, rho_r);
    auto full_d = grid::gather_to_root(decomp, deformed);
    auto full_det = grid::gather_to_root(decomp, det);

    if (comm.is_root()) {
      // Per-slice residuals at three axial slices (the paper uses slices
      // 150/160/180 of 256; we use the same fractions of 48).
      const index_t slices[] = {dims[0] * 150 / 256, dims[0] * 160 / 256,
                                dims[0] * 180 / 256};
      std::printf("  %8s %18s %18s %10s\n", "slice", "residual before",
                  "residual after", "drop");
      for (index_t s : slices) {
        real_t before = 0, after = 0;
        for (index_t b = 0; b < dims[1]; ++b)
          for (index_t c = 0; c < dims[2]; ++c) {
            const index_t i = linear_index(s, b, c, dims);
            const real_t db = full_t[i] - full_r[i];
            const real_t da = full_d[i] - full_r[i];
            before += db * db;
            after += da * da;
          }
        before = std::sqrt(before);
        after = std::sqrt(after);
        std::printf("  %8lld %18.4f %18.4f %9.1f%%\n",
                    static_cast<long long>(s), before, after,
                    100 * (1 - after / (before > 0 ? before : 1)));
        imaging::write_pgm_slice(
            "fig7_det_slice_" + std::to_string(s) + ".pgm", dims, full_det,
            s, 0, 2);  // paper's det color scale [0, 2]
      }

      real_t min_det = full_det[0], max_det = full_det[0];
      for (real_t d : full_det) {
        min_det = std::min(min_det, d);
        max_det = std::max(max_det, d);
      }
      std::printf("  det(grad y) in [%.4f, %.4f] -> %s\n", min_det, max_det,
                  min_det > 0 ? "DIFFEOMORPHIC" : "NOT diffeomorphic");
      std::printf("  wrote fig7_det_slice_*.pgm (color scale [0,2])\n");
      std::printf(
          "\nExpected shape (paper Fig. 7): residuals drop on every slice\n"
          "and the determinant map is strictly positive.\n");
    }
  });
  return 0;
}
