#!/usr/bin/env python3
"""Bench-regression gate for the CI Release job.

Compares freshly produced bench JSONs (BENCH_fft.json, BENCH_semilag.json,
BENCH_continuation.json) against the committed baselines in bench/baselines/.
Field classes:

* Wall-time fields (ending in ``_ms``): fail when the current value exceeds
  baseline * (1 + --time-tolerance). Machines differ, so CI passes a wider
  tolerance than the 25% default that is meant for like-for-like local runs.
  Wall times are only compared when both JSONs were built with the same
  arch flag set (the top-level ``"flags"`` field): differently-tuned
  builds are not comparable, so a mismatch skips the ``_ms`` fields with a
  note and gates only the flag-independent counters.
* Iteration-count fields (ending in ``_iters``: Krylov iterations, Hessian
  matvecs): deterministic on one machine but sensitive to floating-point
  contraction across compilers, so they get their own tolerance
  (--iters-tolerance, default 35%).
* Wire-byte counters (fields ending in ``_bytes``): deterministic
  properties of an exchange schedule (e.g. the FFT transpose wire/saved
  volumes of the mixed-precision leg), gated EXACTLY — any increase fails,
  a decrease is a note to refresh the baseline.
* Other byte counters (fields merely containing ``bytes``):
  near-deterministic, but the interpolation byte volume depends on which
  rank owns each departure point — a floating-point classification that can
  shift by a few points across compilers/FMA contraction — so they get a
  small tolerance (--bytes-tolerance, default 1%).
* Ratio fields (ending in ``_ratio``, e.g. the hidden-comm fraction of the
  overlap bench legs): a fraction in [0, 1] that should not *drop* — losing
  comm/compute overlap is the regression — gated with an absolute
  tolerance (--ratio-tolerance, default 0.25: thread scheduling on an
  oversubscribed CI box makes the hidden fraction noisy). Growth is never
  a failure.
* Throughput rates (ending in ``_rate``, e.g. registrations/sec of the
  batch service leg): higher is better, so the gate is the mirror image of
  the ``_ms`` class — fail when the current value drops below
  baseline / (1 + --time-tolerance). Like wall times, rates are only
  compared when both JSONs carry the same arch flag set.
* Convergence flags (ending in ``_converged``): must match the baseline
  exactly in both directions — a solve that stops converging is a
  regression even though the value decreased.
* Every other counter field (comm messages / alltoallv exchanges):
  deterministic properties of the communication schedule, so ANY increase
  over the baseline fails, regardless of tolerance.

Records are matched by their identity keys (``size``/``ranks``/``case``);
a record or file missing from the baseline is reported (and fails, unless
--allow-missing) so new benches get a committed baseline alongside them.

Usage:
  python3 bench/check_regression.py \
      --baseline-dir bench/baselines [--time-tolerance 0.25] \
      BENCH_fft.json BENCH_semilag.json

Exit code 0 = no regression, 1 = regression or comparison error.
"""

import argparse
import json
import os
import sys

IDENTITY_KEYS = ("size", "ranks", "case", "bench")
TIME_SUFFIX = "_ms"
ITERS_SUFFIX = "_iters"
WIRE_BYTES_SUFFIX = "_bytes"
RATIO_SUFFIX = "_ratio"
RATE_SUFFIX = "_rate"


def record_key(record):
    return tuple((k, record[k]) for k in IDENTITY_KEYS if k in record)


FIELD_CLASS_DESC = {
    "identity": "identity key (matches records, never gated)",
    "time": "wall time (--time-tolerance)",
    "iters": "iteration count (--iters-tolerance)",
    "wire_bytes": "wire byte counter (exact, any growth fails)",
    "bytes": "byte counter (--bytes-tolerance)",
    "ratio": "ratio (absolute drop beyond --ratio-tolerance fails)",
    "rate": "throughput rate (drop beyond --time-tolerance fails)",
    "converged": "convergence flag (exact in both directions)",
    "counter": "comm counter (exact, any growth fails)",
}


def field_class(field):
    """Gate class of a record field (see the module docstring). The compare
    loop dispatches on this, so --list-fields prints exactly what the gate
    will do."""
    if field in IDENTITY_KEYS:
        return "identity"
    if field.endswith(TIME_SUFFIX):
        return "time"
    if field.endswith(ITERS_SUFFIX):
        return "iters"
    if field.endswith(WIRE_BYTES_SUFFIX):
        return "wire_bytes"
    if "bytes" in field:
        return "bytes"
    if field.endswith(RATIO_SUFFIX):
        return "ratio"
    if field.endswith(RATE_SUFFIX):
        return "rate"
    if field.endswith("_converged"):
        return "converged"
    return "counter"


def load_records(path, failures):
    """Parses one bench JSON; on failure appends a one-line error naming the
    file to `failures` and returns None (a truncated or corrupt bench output
    must read as a gate failure, not a crash)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        failures.append(f"cannot read bench JSON {path}: {e.strerror or e}")
        return None
    except json.JSONDecodeError as e:
        failures.append(f"corrupt bench JSON {path}: line {e.lineno}: "
                        f"{e.msg}")
        return None
    if not isinstance(doc, dict):
        failures.append(f"corrupt bench JSON {path}: top level is not an "
                        "object")
        return None
    records = {}
    for rec in doc.get("records", []):
        records[record_key(rec)] = rec
    return (doc.get("bench", os.path.basename(path)),
            doc.get("flags", "default"), records)


def list_fields(paths, failures):
    """Prints every record's identity and a field -> gate-class table, so a
    baseline refresh can be reviewed without reading the gate logic."""
    for path in paths:
        loaded = load_records(path, failures)
        if loaded is None:
            continue
        bench, flags, records = loaded
        print(f"{path}: bench={bench} flags={flags} "
              f"({len(records)} record(s))")
        for key, rec in sorted(records.items()):
            ident = ", ".join(f"{k}={v}" for k, v in key)
            print(f"  record ({ident})")
            for field in rec:
                cls = field_class(field)
                if cls == "identity":
                    continue
                print(f"    {field}: {FIELD_CLASS_DESC[cls]}")


def compare_file(current_path, baseline_path, time_tol, bytes_tol, iters_tol,
                 ratio_tol, failures, notes):
    cur_loaded = load_records(current_path, failures)
    base_loaded = load_records(baseline_path, failures)
    if cur_loaded is None or base_loaded is None:
        return
    bench, cur_flags, current = cur_loaded
    _, base_flags, baseline = base_loaded
    compare_times = cur_flags == base_flags
    if not compare_times:
        notes.append(
            f"{bench}: arch flags differ (current '{cur_flags}' vs baseline "
            f"'{base_flags}'); wall-time fields skipped, counters still "
            "gated")

    # Coverage loss is itself a regression: every baseline record and field
    # must still be produced by the current run.
    for key, base in sorted(baseline.items()):
        ident = ", ".join(f"{k}={v}" for k, v in key)
        cur = current.get(key)
        if cur is None:
            failures.append(f"{bench}: baseline record ({ident}) missing "
                            "from the current output (bench case dropped?)")
            continue
        for field in base:
            if field not in cur:
                failures.append(f"{bench} ({ident}): baseline field {field} "
                                "missing from the current output")

    for key, cur in sorted(current.items()):
        base = baseline.get(key)
        ident = ", ".join(f"{k}={v}" for k, v in key)
        if base is None:
            notes.append(f"{bench}: no baseline record for ({ident}); "
                         "refresh bench/baselines/")
            continue
        for field, cur_val in cur.items():
            cls = field_class(field)
            if cls == "identity" or not isinstance(cur_val, (int, float)):
                continue
            base_val = base.get(field)
            if base_val is None:
                notes.append(f"{bench} ({ident}): field {field} missing from "
                             "baseline")
                continue
            if cls == "time":
                if not compare_times:
                    continue
                limit = base_val * (1.0 + time_tol)
                if cur_val > limit:
                    failures.append(
                        f"{bench} ({ident}): {field} regressed "
                        f"{base_val:.3f} -> {cur_val:.3f} ms "
                        f"(limit {limit:.3f}, tolerance {time_tol:.0%})")
                elif base_val > 0 and cur_val < base_val / (1.0 + time_tol):
                    notes.append(
                        f"{bench} ({ident}): {field} improved "
                        f"{base_val:.3f} -> {cur_val:.3f} ms; consider "
                        "refreshing the baseline")
            elif cls == "iters":
                # Iteration counts wobble across compilers (FMA contraction
                # shifts PCG breakdown points); a real conditioning
                # regression blows far past this tolerance.
                limit = base_val * (1.0 + iters_tol)
                if cur_val > limit:
                    failures.append(
                        f"{bench} ({ident}): iteration count {field} grew "
                        f"{base_val} -> {cur_val} (limit {limit:.1f}, "
                        f"tolerance {iters_tol:.0%})")
                elif cur_val < base_val / (1.0 + iters_tol):
                    notes.append(
                        f"{bench} ({ident}): iteration count {field} "
                        f"dropped {base_val} -> {cur_val}; refresh the "
                        "baseline to lock in the win")
            elif cls == "wire_bytes":
                # Deterministic wire/saved byte counters (the fp32 wire
                # format halves these; any growth is a format regression).
                if cur_val > base_val:
                    failures.append(
                        f"{bench} ({ident}): wire byte counter {field} grew "
                        f"{base_val} -> {cur_val} (gated exactly)")
                elif cur_val < base_val:
                    notes.append(
                        f"{bench} ({ident}): wire byte counter {field} "
                        f"dropped {base_val} -> {cur_val}; refresh the "
                        "baseline to lock in the win")
            elif cls == "bytes":
                # Byte volume is data-dependent at the margin (departure
                # point ownership is a floating-point classification).
                limit = base_val * (1.0 + bytes_tol)
                if cur_val > limit:
                    failures.append(
                        f"{bench} ({ident}): byte counter {field} grew "
                        f"{base_val} -> {cur_val} (limit {limit:.0f}, "
                        f"tolerance {bytes_tol:.0%})")
            elif cls == "ratio":
                # Overlap-efficiency style fractions: regressing means the
                # nonblocking legs stopped hiding wire time. Absolute
                # tolerance (the fraction is noisy under oversubscription);
                # growth is always fine.
                if cur_val < base_val - ratio_tol:
                    failures.append(
                        f"{bench} ({ident}): ratio {field} dropped "
                        f"{base_val:.3f} -> {cur_val:.3f} "
                        f"(limit -{ratio_tol:.2f} absolute)")
                elif cur_val > base_val + ratio_tol:
                    notes.append(
                        f"{bench} ({ident}): ratio {field} improved "
                        f"{base_val:.3f} -> {cur_val:.3f}; consider "
                        "refreshing the baseline")
            elif cls == "rate":
                # Throughput (higher is better): the mirror image of the
                # wall-time class, with the same tolerance and the same
                # arch-flag skip (a rate is 1 / wall time in disguise).
                if not compare_times:
                    continue
                limit = base_val / (1.0 + time_tol)
                if cur_val < limit:
                    failures.append(
                        f"{bench} ({ident}): rate {field} regressed "
                        f"{base_val:.3f} -> {cur_val:.3f} "
                        f"(limit {limit:.3f}, tolerance {time_tol:.0%})")
                elif cur_val > base_val * (1.0 + time_tol):
                    notes.append(
                        f"{bench} ({ident}): rate {field} improved "
                        f"{base_val:.3f} -> {cur_val:.3f}; consider "
                        "refreshing the baseline")
            elif cls == "converged":
                # Convergence flags must match exactly in BOTH directions: a
                # solve that stops converging is a regression even though
                # the value *decreased*.
                if cur_val != base_val:
                    failures.append(
                        f"{bench} ({ident}): convergence flag {field} "
                        f"changed {base_val} -> {cur_val}")
            else:
                # Deterministic communication counters: never allowed to grow.
                if cur_val > base_val:
                    failures.append(
                        f"{bench} ({ident}): counter {field} grew "
                        f"{base_val} -> {cur_val} (counters are exact; any "
                        "increase is a comm-schedule regression)")
                elif cur_val < base_val:
                    notes.append(
                        f"{bench} ({ident}): counter {field} dropped "
                        f"{base_val} -> {cur_val}; refresh the baseline to "
                        "lock in the win")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", nargs="+",
                        help="bench JSONs produced by this run")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--time-tolerance", type=float,
                        default=float(os.environ.get("BENCH_TIME_TOLERANCE",
                                                     0.25)),
                        help="allowed fractional wall-time growth "
                             "(default 0.25; env BENCH_TIME_TOLERANCE)")
    parser.add_argument("--bytes-tolerance", type=float, default=0.01,
                        help="allowed fractional growth of byte counters "
                             "(default 0.01)")
    parser.add_argument("--iters-tolerance", type=float, default=0.35,
                        help="allowed fractional growth of iteration-count "
                             "fields (default 0.35)")
    parser.add_argument("--ratio-tolerance", type=float,
                        default=float(os.environ.get("BENCH_RATIO_TOLERANCE",
                                                     0.25)),
                        help="allowed absolute drop of _ratio fields "
                             "(default 0.25; env BENCH_RATIO_TOLERANCE)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail when a baseline file is absent")
    parser.add_argument("--list-fields", action="store_true",
                        help="print each record's identity and a field -> "
                             "gate-class table instead of comparing")
    args = parser.parse_args()

    if args.list_fields:
        failures = []
        list_fields(args.current, failures)
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return 1 if failures else 0

    failures, notes = [], []
    for current_path in args.current:
        baseline_path = os.path.join(args.baseline_dir,
                                     os.path.basename(current_path))
        if not os.path.exists(current_path):
            failures.append(f"missing bench output {current_path}")
            continue
        if not os.path.exists(baseline_path):
            msg = f"no committed baseline {baseline_path}"
            (notes if args.allow_missing else failures).append(msg)
            continue
        compare_file(current_path, baseline_path, args.time_tolerance,
                     args.bytes_tolerance, args.iters_tolerance,
                     args.ratio_tolerance, failures, notes)

    for note in notes:
        print(f"note: {note}")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"bench regression gate passed "
          f"({len(args.current)} file(s), time tolerance "
          f"{args.time_tolerance:.0%}, bytes tolerance "
          f"{args.bytes_tolerance:.0%}, iteration tolerance "
          f"{args.iters_tolerance:.0%}, ratio tolerance "
          f"{args.ratio_tolerance:.2f} absolute, message/exchange "
          f"counters exact)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
