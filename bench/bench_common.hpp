// Shared harness for the paper-reproduction benchmarks: runs one
// registration case under mpisim and reports the columns of the paper's
// tables (time to solution, FFT comm/exec, interpolation comm/exec).
//
// Scaling note (see DESIGN.md): this machine has 2 physical cores and no
// MPI, so rank counts beyond 2 oversubscribe; the tables reproduce the
// paper's *structure* (who wins, comm/exec split, trends), not TACC's
// absolute numbers. Grid sizes are scaled down from the paper's 64^3-1024^3
// to 32^3-96^3 so every binary finishes in seconds to a few minutes.
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <mutex>
#include <span>
#include <string>

#include "core/diffreg.hpp"
#include "fft/fft3d_distributed.hpp"
#include "imaging/synthetic.hpp"

// Arch flag set the bench binaries were compiled with (see the top-level
// DIFFREG_NATIVE_ARCH option); recorded in every bench JSON so numbers from
// differently-tuned builds are never compared blindly.
#ifndef DIFFREG_ARCH_FLAGS
#define DIFFREG_ARCH_FLAGS "default"
#endif

namespace diffreg::bench {

inline const char* arch_flags() { return DIFFREG_ARCH_FLAGS; }

/// Shared CLI parsing of the trajectory reporters:
/// `prog [--wire fp64|fp32] [output.json]`. --wire may appear anywhere,
/// exactly one positional output path is accepted, and unknown flags are
/// rejected (a misplaced --wire must never silently run fp64 under an
/// fp32-named output). Returns false after printing an error; `out_path`
/// is left empty when not given so the caller picks its default.
inline bool parse_wire_args(int argc, char** argv, const char* prog,
                            WirePrecision& wire, std::string& out_path) {
  wire = WirePrecision::kF64;
  out_path.clear();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--wire") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --wire needs a value (fp64|fp32)\n", prog);
        return false;
      }
      const std::string v = argv[++i];
      if (v == "fp32") {
        wire = WirePrecision::kF32;
      } else if (v != "fp64") {
        std::fprintf(stderr, "%s: --wire must be fp64 or fp32\n", prog);
        return false;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "%s: unknown flag %s\n", prog, arg.c_str());
      return false;
    } else if (out_path.empty()) {
      out_path = arg;
    } else {
      std::fprintf(stderr, "%s: unexpected argument %s\n", prog, arg.c_str());
      return false;
    }
  }
  return true;
}

enum class Workload { kSynthetic, kSyntheticDivFree, kBrain };

// ---------------------------------------------------------------------------
// Shared trajectory cases of the fft/semilag reporters. One definition
// drives the fp64 legs (fft_report, semilag_report), their --wire fp32
// variants, AND the mixed_report leg, so all three measure the identical
// workload; callers pick which wall times / Timings counters to publish.

/// Slowest-rank wall times of one distributed-FFT case plus the summed
/// per-rank Timings of `reps` forward + `reps` inverse transforms.
struct FftCaseResult {
  double forward_ms = 0;
  double inverse_ms = 0;
  Timings agg;  // sum over ranks; normalize by 2 * reps * p for per-rank
};

/// `guard` adds the --guard validate_finite sweep after every transform (the
/// granularity the solver uses), so the "guard" bench leg prices the
/// safeguard on the hottest kernel. The sweep's allreduce self-charges to
/// kOther, so the published kFftComm counters match the unguarded leg.
inline FftCaseResult run_fft_trajectory_case(index_t n, int p, int reps,
                                             WirePrecision wire,
                                             bool overlap = false,
                                             bool guard = false) {
  FftCaseResult out;
  const Int3 dims{n, n, n};
  double fwd_max = 0, inv_max = 0;
  auto timings = mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims);
    fft::DistributedFft3d fft(decomp, wire, overlap);
    std::vector<real_t> x(fft.local_real_size());
    for (index_t i = 0; i < fft.local_real_size(); ++i)
      x[i] = static_cast<real_t>((i * 2654435761u) % 1000) / 1000.0;
    std::vector<complex_t> spec(fft.local_spectral_size());
    const auto spec_as_real = [&] {
      return std::span<const real_t>(
          reinterpret_cast<const real_t*>(spec.data()), 2 * spec.size());
    };

    fft.forward(x, spec);  // warm-up
    fft.inverse(spec, x);
    comm.timings().clear();

    WallTimer t;
    for (int r = 0; r < reps; ++r) {
      fft.forward(x, spec);
      if (guard) grid::validate_finite(decomp, spec_as_real(), "fft forward");
    }
    const double fwd = t.seconds() / reps;
    t.reset();
    for (int r = 0; r < reps; ++r) {
      fft.inverse(spec, x);
      if (guard) grid::validate_finite(decomp, x, "fft inverse");
    }
    const double inv = t.seconds() / reps;

    static std::mutex mu;
    std::scoped_lock lock(mu);
    fwd_max = std::max(fwd_max, fwd);
    inv_max = std::max(inv_max, inv);
  });
  for (const auto& t : timings) out.agg += t;
  out.forward_ms = fwd_max * 1e3;
  out.inverse_ms = inv_max * 1e3;
  return out;
}

/// Slowest-rank wall times of the semi-Lagrangian trajectory case (plan
/// build, cached-plan state solve, GN matvec transports, batched vec3
/// interpolation) plus the summed per-rank Timings delta of the matvec
/// loop (normalize by reps * p for per-rank per-matvec).
struct SemilagCaseResult {
  double plan_build_ms = 0;
  double state_ms = 0;
  double matvec_ms = 0;
  double interp_vec3_ms = 0;
  Timings matvec_agg;
};

/// `guard` mirrors the solver's --guard sweep cadence on the transport path:
/// one validate_finite per timed solve/matvec/interp result. Its allreduce
/// self-charges to kOther, keeping the kInterpComm counters comparable.
inline SemilagCaseResult run_semilag_trajectory_case(index_t n, int p,
                                                     int reps,
                                                     WirePrecision wire,
                                                     bool overlap = false,
                                                     bool guard = false) {
  SemilagCaseResult out;
  const Int3 dims{n, n, n};
  double build_max = 0, state_max = 0, matvec_max = 0, vec3_max = 0;
  Timings agg;
  std::mutex mu;
  mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims);
    spectral::SpectralOps ops(decomp, wire, overlap);
    semilag::TransportConfig tc;
    tc.nt = 4;
    tc.wire = wire;
    tc.overlap = overlap;
    semilag::Transport transport(ops, tc);

    auto rho0 = imaging::synthetic_template(decomp);
    auto va = imaging::synthetic_velocity(decomp, 0.5);
    auto vb = imaging::synthetic_velocity(decomp, 0.52);
    auto w = imaging::synthetic_velocity_divfree(decomp, 0.3);

    // Warm-up: builds the plans and grows every scratch buffer once.
    grid::ScalarField rho_tilde1;
    grid::VectorField b, vec_out;
    transport.set_velocity(va);
    transport.solve_state(rho0);
    transport.solve_incremental_state(w, rho_tilde1);
    transport.solve_incremental_adjoint_gn(rho_tilde1, b);
    transport.interp_vec_at_forward_points(w, vec_out);

    // Plan build: alternate two velocities so every call rebuilds (a
    // repeated velocity would hit the plan cache).
    WallTimer t;
    for (int r = 0; r < reps; ++r)
      transport.set_velocity(r % 2 == 0 ? vb : va);
    const double build = t.seconds() / reps;

    t.reset();
    for (int r = 0; r < reps; ++r) {
      transport.solve_state(rho0);
      if (guard)
        grid::validate_finite(decomp, transport.final_state(),
                              "transport state");
    }
    const double state = t.seconds() / reps;

    const Timings before = comm.timings();
    t.reset();
    for (int r = 0; r < reps; ++r) {
      transport.solve_incremental_state(w, rho_tilde1);
      transport.solve_incremental_adjoint_gn(rho_tilde1, b);
      if (guard) grid::validate_finite(decomp, b, "gn matvec integrand");
    }
    const double matvec = t.seconds() / reps;
    const Timings matvec_delta = timings_delta(before, comm.timings());

    t.reset();
    for (int r = 0; r < reps; ++r) {
      transport.interp_vec_at_forward_points(w, vec_out);
      if (guard) grid::validate_finite(decomp, vec_out, "vec3 interp");
    }
    const double vec3 = t.seconds() / reps;

    std::scoped_lock lock(mu);
    build_max = std::max(build_max, build);
    state_max = std::max(state_max, state);
    matvec_max = std::max(matvec_max, matvec);
    vec3_max = std::max(vec3_max, vec3);
    agg += matvec_delta;
  });
  out.plan_build_ms = build_max * 1e3;
  out.state_ms = state_max * 1e3;
  out.matvec_ms = matvec_max * 1e3;
  out.interp_vec3_ms = vec3_max * 1e3;
  out.matvec_agg = agg;
  return out;
}

struct CaseConfig {
  Int3 dims{32, 32, 32};
  int ranks = 1;
  Workload workload = Workload::kSynthetic;
  real_t velocity_amplitude = 0.5;
  core::RegistrationOptions options;
};

struct CaseResult {
  double time_to_solution = 0;
  Timings timings;  // max over ranks (slowest-rank reporting, as the paper)
  real_t rel_residual = 1;
  real_t min_det = 0, max_det = 0;
  int newton_iters = 0;
  int matvecs = 0;
  bool converged = false;
};

/// Runs one registration case end to end and aggregates rank timings.
inline CaseResult run_case(const CaseConfig& config) {
  CaseResult out;
  auto rank_timings = mpisim::run_spmd(
      config.ranks, [&](mpisim::Communicator& comm) {
        grid::PencilDecomp decomp(comm, config.dims);
        spectral::SpectralOps ops(decomp);

        grid::ScalarField rho_t, rho_r;
        switch (config.workload) {
          case Workload::kSynthetic: {
            rho_t = imaging::synthetic_template(decomp);
            auto v = imaging::synthetic_velocity(decomp,
                                                 config.velocity_amplitude);
            rho_r = imaging::make_reference(ops, rho_t, v);
            break;
          }
          case Workload::kSyntheticDivFree: {
            rho_t = imaging::synthetic_template(decomp);
            auto v = imaging::synthetic_velocity_divfree(
                decomp, config.velocity_amplitude);
            rho_r = imaging::make_reference(ops, rho_t, v);
            break;
          }
          case Workload::kBrain: {
            rho_r = imaging::brain_phantom(decomp, 1);
            rho_t = imaging::brain_phantom(decomp, 2);
            break;
          }
        }

        core::RegistrationSolver solver(decomp, config.options);
        auto result = solver.run(rho_t, rho_r);
        if (comm.is_root()) {
          out.time_to_solution = result.time_to_solution;
          out.rel_residual = result.rel_residual;
          out.min_det = result.min_det;
          out.max_det = result.max_det;
          out.newton_iters = result.newton.iterations;
          out.matvecs = result.newton.total_matvecs;
          out.converged = result.newton.converged;
        }
      });
  for (const auto& t : rank_timings) out.timings.max_with(t);
  return out;
}

/// Paper-style table header (Tables I-IV share these columns).
inline void print_scaling_header(const char* title) {
  std::printf("%s\n", title);
  std::printf("%4s %12s %6s %16s | %10s %10s | %12s %12s | %8s\n", "#",
              "grid", "tasks", "time to solution", "fft comm", "fft exec",
              "interp comm", "interp exec", "rel res");
}

inline void print_scaling_row(int id, const Int3& dims, int ranks,
                              const CaseResult& r) {
  char grid[32];
  if (dims[0] == dims[1] && dims[1] == dims[2])
    std::snprintf(grid, sizeof grid, "%lld^3",
                  static_cast<long long>(dims[0]));
  else
    std::snprintf(grid, sizeof grid, "%lldx%lldx%lld",
                  static_cast<long long>(dims[0]),
                  static_cast<long long>(dims[1]),
                  static_cast<long long>(dims[2]));
  std::printf(
      "%4d %12s %6d %16.2f | %10.2f %10.2f | %12.2f %12.2f | %8.3f\n", id,
      grid, ranks, r.time_to_solution, r.timings.get(TimeKind::kFftComm),
      r.timings.get(TimeKind::kFftExec),
      r.timings.get(TimeKind::kInterpComm),
      r.timings.get(TimeKind::kInterpExec), r.rel_residual);
}

}  // namespace diffreg::bench
