// Shared harness for the paper-reproduction benchmarks: runs one
// registration case under mpisim and reports the columns of the paper's
// tables (time to solution, FFT comm/exec, interpolation comm/exec).
//
// Scaling note (see DESIGN.md): this machine has 2 physical cores and no
// MPI, so rank counts beyond 2 oversubscribe; the tables reproduce the
// paper's *structure* (who wins, comm/exec split, trends), not TACC's
// absolute numbers. Grid sizes are scaled down from the paper's 64^3-1024^3
// to 32^3-96^3 so every binary finishes in seconds to a few minutes.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "core/diffreg.hpp"
#include "imaging/synthetic.hpp"

namespace diffreg::bench {

enum class Workload { kSynthetic, kSyntheticDivFree, kBrain };

struct CaseConfig {
  Int3 dims{32, 32, 32};
  int ranks = 1;
  Workload workload = Workload::kSynthetic;
  real_t velocity_amplitude = 0.5;
  core::RegistrationOptions options;
};

struct CaseResult {
  double time_to_solution = 0;
  Timings timings;  // max over ranks (slowest-rank reporting, as the paper)
  real_t rel_residual = 1;
  real_t min_det = 0, max_det = 0;
  int newton_iters = 0;
  int matvecs = 0;
  bool converged = false;
};

/// Runs one registration case end to end and aggregates rank timings.
inline CaseResult run_case(const CaseConfig& config) {
  CaseResult out;
  auto rank_timings = mpisim::run_spmd(
      config.ranks, [&](mpisim::Communicator& comm) {
        grid::PencilDecomp decomp(comm, config.dims);
        spectral::SpectralOps ops(decomp);

        grid::ScalarField rho_t, rho_r;
        switch (config.workload) {
          case Workload::kSynthetic: {
            rho_t = imaging::synthetic_template(decomp);
            auto v = imaging::synthetic_velocity(decomp,
                                                 config.velocity_amplitude);
            rho_r = imaging::make_reference(ops, rho_t, v);
            break;
          }
          case Workload::kSyntheticDivFree: {
            rho_t = imaging::synthetic_template(decomp);
            auto v = imaging::synthetic_velocity_divfree(
                decomp, config.velocity_amplitude);
            rho_r = imaging::make_reference(ops, rho_t, v);
            break;
          }
          case Workload::kBrain: {
            rho_r = imaging::brain_phantom(decomp, 1);
            rho_t = imaging::brain_phantom(decomp, 2);
            break;
          }
        }

        core::RegistrationSolver solver(decomp, config.options);
        auto result = solver.run(rho_t, rho_r);
        if (comm.is_root()) {
          out.time_to_solution = result.time_to_solution;
          out.rel_residual = result.rel_residual;
          out.min_det = result.min_det;
          out.max_det = result.max_det;
          out.newton_iters = result.newton.iterations;
          out.matvecs = result.newton.total_matvecs;
          out.converged = result.newton.converged;
        }
      });
  for (const auto& t : rank_timings) out.timings.max_with(t);
  return out;
}

/// Paper-style table header (Tables I-IV share these columns).
inline void print_scaling_header(const char* title) {
  std::printf("%s\n", title);
  std::printf("%4s %12s %6s %16s | %10s %10s | %12s %12s | %8s\n", "#",
              "grid", "tasks", "time to solution", "fft comm", "fft exec",
              "interp comm", "interp exec", "rel res");
}

inline void print_scaling_row(int id, const Int3& dims, int ranks,
                              const CaseResult& r) {
  char grid[32];
  if (dims[0] == dims[1] && dims[1] == dims[2])
    std::snprintf(grid, sizeof grid, "%lld^3",
                  static_cast<long long>(dims[0]));
  else
    std::snprintf(grid, sizeof grid, "%lldx%lldx%lld",
                  static_cast<long long>(dims[0]),
                  static_cast<long long>(dims[1]),
                  static_cast<long long>(dims[2]));
  std::printf(
      "%4d %12s %6d %16.2f | %10.2f %10.2f | %12.2f %12.2f | %8.3f\n", id,
      grid, ranks, r.time_to_solution, r.timings.get(TimeKind::kFftComm),
      r.timings.get(TimeKind::kFftExec),
      r.timings.get(TimeKind::kInterpComm),
      r.timings.get(TimeKind::kInterpExec), r.rel_residual);
}

}  // namespace diffreg::bench
