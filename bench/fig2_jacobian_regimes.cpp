// Reproduces Fig. 2 (paper): the det(grad y) regimes of deformation maps —
// volume shrinking (det in (0,1)), volume preserving (det = 1), volume
// expanding (det > 1), and the non-diffeomorphic regime (det <= 0) that
// appropriate regularization must prevent.
//
// We run the same registration problem in three configurations and report
// the det statistics plus a histogram:
//   (a) compressible, well regularized      -> det spread around 1, all > 0
//   (b) incompressible                      -> det = 1 everywhere
//   (c) compressible, weakly regularized    -> wider spread (approaching
//                                              the inadmissible regime)
#include "bench_common.hpp"

using namespace diffreg;
using namespace diffreg::bench;

namespace {

struct DetStats {
  real_t min_det, max_det;
  std::array<index_t, 6> histogram{};  // (-inf,0],(0,.5],(.5,.9],(.9,1.1],(1.1,2],(2,inf)
};

DetStats det_stats_for(const Int3& dims, bool incompressible, real_t beta,
                       real_t amplitude) {
  DetStats stats{};
  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims);
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v = incompressible
                 ? imaging::synthetic_velocity_divfree(decomp, amplitude)
                 : imaging::synthetic_velocity(decomp, amplitude);
    auto rho_r = imaging::make_reference(ops, rho_t, v);

    core::RegistrationOptions opt;
    opt.incompressible = incompressible;
    opt.beta = beta;
    opt.max_newton_iters = 8;
    core::RegistrationSolver solver(decomp, opt);
    auto result = solver.run(rho_t, rho_r);

    grid::ScalarField det;
    solver.jacobian_field(result.velocity, det);
    std::array<index_t, 6> local{};
    for (real_t d : det) {
      int bucket = d <= 0     ? 0
                   : d <= 0.5 ? 1
                   : d <= 0.9 ? 2
                   : d <= 1.1 ? 3
                   : d <= 2.0 ? 4
                              : 5;
      ++local[bucket];
    }
    if (comm.is_root()) {
      stats.min_det = result.min_det;
      stats.max_det = result.max_det;
    }
    for (int bkt = 0; bkt < 6; ++bkt) {
      const index_t total = comm.allreduce_sum(local[bkt]);
      if (comm.is_root()) stats.histogram[bkt] = total;
    }
  });
  return stats;
}

void print_stats(const char* label, const DetStats& s) {
  std::printf("  %-36s det in [%7.4f, %7.4f]  |", label, s.min_det,
              s.max_det);
  const char* buckets[] = {"<=0", "(0,.5]", "(.5,.9]", "(.9,1.1]", "(1.1,2]",
                           ">2"};
  for (int bkt = 0; bkt < 6; ++bkt)
    std::printf(" %s:%lld", buckets[bkt],
                static_cast<long long>(s.histogram[bkt]));
  std::printf("\n");
}

}  // namespace

int main() {
  const Int3 dims{32, 32, 32};
  std::printf("Fig. 2 (structure): Jacobian-determinant regimes of the "
              "computed maps\n");

  print_stats("(a) compressible, beta=1e-2",
              det_stats_for(dims, false, 1e-2, 0.5));
  print_stats("(b) incompressible (volume preserving)",
              det_stats_for(dims, true, 1e-2, 0.5));
  print_stats("(c) compressible, beta=1e-5 (weak)",
              det_stats_for(dims, false, 1e-5, 0.5));

  std::printf(
      "\nExpected shape (paper Fig. 2): (a) spreads around 1 but stays\n"
      "positive (diffeomorphic); (b) concentrates at det = 1; (c) spreads\n"
      "much wider — with too little regularization the map approaches the\n"
      "non-diffeomorphic det <= 0 regime the paper's Fig. 2 warns about.\n");
  return 0;
}
