// Reproduces the structure of Table III (paper): the incompressible
// (volume-preserving, "mass preserving") runs at a fixed grid size as a
// function of task count. The incompressibility constraint is eliminated
// through the Leray projector; the divergence-free velocity makes the
// div-v source terms of the transport equations vanish.
//
// Paper: fixed 128^3 grid, 1..32 tasks. Here: fixed 40^3 grid, 1..4 ranks.
#include "bench_common.hpp"

using namespace diffreg;
using namespace diffreg::bench;

int main() {
  print_scaling_header(
      "Table III (structure): incompressible synthetic registration, "
      "fixed grid, beta=1e-2, nt=4");

  int id = 20;  // numbering follows the paper's Table III (#20...)
  for (int ranks : {1, 2, 4}) {
    CaseConfig config;
    config.dims = {40, 40, 40};
    config.ranks = ranks;
    config.workload = Workload::kSyntheticDivFree;
    config.options.incompressible = true;
    config.options.beta = 1e-2;
    config.options.gtol = 1e-2;
    config.options.max_newton_iters = 6;
    const CaseResult r = run_case(config);
    print_scaling_row(id++, config.dims, ranks, r);
    std::printf("      det(grad y) in [%.4f, %.4f] (volume preserving -> 1)\n",
                r.min_det, r.max_det);
  }

  std::printf(
      "\nExpected shape (paper): same strong-scaling trend as the\n"
      "compressible case; the map is volume preserving (det = 1) to\n"
      "discretization accuracy.\n");
  return 0;
}
