// Kernel microbenchmarks (google-benchmark) backing the paper's section
// III-C complexity discussion, plus the ablations listed in DESIGN.md:
//
//  * 3D FFT forward/inverse (the O(N^3 log N) spectral workhorse)
//  * spectral gradient (1 forward + 3 inverse FFTs, the fused variant)
//  * raw tricubic kernel throughput (the paper's ~600 flops/point estimate)
//  * interpolation plan: build (scatter phase) vs execute (reuse) — the
//    paper's "once per field per Newton iteration" optimization
//  * tricubic vs trilinear execution cost
//  * Hessian matvec: Gauss-Newton vs full Newton
//  * ghost-layer exchange
//  * mpisim collectives (allreduce/broadcast wall-time vs rank count), so
//    comm-path regressions show up before they skew the Tables I-IV splits
#include <benchmark/benchmark.h>

#include "core/diffreg.hpp"
#include "imaging/synthetic.hpp"

using namespace diffreg;

namespace {

/// Single-rank world reused by all benchmarks of one size.
struct World {
  Timings timings;
  mpisim::Communicator comm;
  grid::PencilDecomp decomp;
  spectral::SpectralOps ops;

  explicit World(const Int3& dims)
      : comm(mpisim::single_rank(timings)), decomp(comm, dims), ops(decomp) {}
};

World& world(index_t n) {
  static std::map<index_t, std::unique_ptr<World>> cache;
  auto& slot = cache[n];
  if (!slot) slot = std::make_unique<World>(Int3{n, n, n});
  return *slot;
}

void BM_Fft3dForward(benchmark::State& state) {
  World& w = world(state.range(0));
  auto& fft = w.ops.fft();
  std::vector<real_t> x(fft.local_real_size(), 1.0);
  std::vector<complex_t> spec(fft.local_spectral_size());
  for (auto _ : state) {
    fft.forward(x, spec);
    benchmark::DoNotOptimize(spec.data());
  }
  state.SetItemsProcessed(state.iterations() * fft.local_real_size());
}
BENCHMARK(BM_Fft3dForward)->Arg(32)->Arg(64);

void BM_Fft3dRoundTrip(benchmark::State& state) {
  World& w = world(state.range(0));
  auto& fft = w.ops.fft();
  std::vector<real_t> x(fft.local_real_size(), 1.0);
  std::vector<complex_t> spec(fft.local_spectral_size());
  for (auto _ : state) {
    fft.forward(x, spec);
    fft.inverse(spec, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * fft.local_real_size());
}
BENCHMARK(BM_Fft3dRoundTrip)->Arg(32)->Arg(64);

void BM_Fft3dInverseMany(benchmark::State& state) {
  // Batched 3-component inverse (one exchange schedule for the whole vector
  // field) vs. three scalar inverses — the CLAIRE-style batching ablation.
  const bool batched = state.range(1) == 1;
  World& w = world(state.range(0));
  auto& fft = w.ops.fft();
  std::vector<real_t> x(fft.local_real_size(), 1.0);
  std::array<std::vector<complex_t>, 3> spec;
  std::array<std::vector<real_t>, 3> back;
  for (int c = 0; c < 3; ++c) {
    spec[c].resize(fft.local_spectral_size());
    back[c].assign(fft.local_real_size(), 0.0);
    fft.forward(x, spec[c]);
  }
  for (auto _ : state) {
    if (batched) {
      const complex_t* specs[3] = {spec[0].data(), spec[1].data(),
                                   spec[2].data()};
      real_t* reals[3] = {back[0].data(), back[1].data(), back[2].data()};
      fft.inverse_many(std::span<const complex_t* const>(specs),
                       std::span<real_t* const>(reals));
    } else {
      for (int c = 0; c < 3; ++c) fft.inverse(spec[c], back[c]);
    }
    benchmark::DoNotOptimize(back[0].data());
  }
  state.SetLabel(batched ? "batched" : "sequential");
  state.SetItemsProcessed(state.iterations() * 3 * fft.local_real_size());
}
BENCHMARK(BM_Fft3dInverseMany)->Args({32, 0})->Args({32, 1})->Args({64, 0})
    ->Args({64, 1});

void BM_SpectralGradient(benchmark::State& state) {
  World& w = world(state.range(0));
  auto f = imaging::synthetic_template(w.decomp);
  grid::VectorField g(w.decomp.local_real_size());
  for (auto _ : state) {
    w.ops.gradient(f, g);
    benchmark::DoNotOptimize(g[0].data());
  }
  state.SetItemsProcessed(state.iterations() * w.decomp.local_real_size());
}
BENCHMARK(BM_SpectralGradient)->Arg(32)->Arg(64);

void BM_TricubicKernelRaw(benchmark::State& state) {
  // Pure kernel throughput on a padded block, no communication.
  const Int3 gdims{36, 36, 36};
  std::vector<real_t> g(gdims.prod());
  for (index_t i = 0; i < gdims.prod(); ++i)
    g[i] = std::sin(0.01 * static_cast<real_t>(i));
  real_t u = 2.0;
  real_t sum = 0;
  for (auto _ : state) {
    u = 2.0 + std::fmod(u * 1.61803, 30.0);
    sum += interp::tricubic_eval(g.data(), gdims, u, 0.5 * u + 2, 17.3);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TricubicKernelRaw);

void BM_InterpPlanBuild(benchmark::State& state) {
  // The scatter phase the paper amortizes: force a rebuild every iteration
  // by alternating between two velocities (a repeated velocity would hit
  // the plan cache and measure nothing).
  World& w = world(state.range(0));
  semilag::TransportConfig tc;
  semilag::Transport transport(w.ops, tc);
  auto va = imaging::synthetic_velocity(w.decomp, 0.5);
  auto vb = imaging::synthetic_velocity(w.decomp, 0.51);
  bool flip = false;
  for (auto _ : state) {
    transport.set_velocity(flip ? va : vb);  // trajectory + two plan builds
    flip = !flip;
    benchmark::DoNotOptimize(&transport);
  }
  state.SetItemsProcessed(state.iterations() * w.decomp.local_real_size());
}
BENCHMARK(BM_InterpPlanBuild)->Arg(32);

void BM_InterpBatchedVsSequential(benchmark::State& state) {
  // Ablation: 3 fields through one interpolate_many (arg 1) vs three
  // sequential interpolate calls (arg 0) on the same cached plan.
  World& w = world(32);
  const bool batched = state.range(0) == 1;
  semilag::TransportConfig tc;
  semilag::Transport transport(w.ops, tc);
  transport.set_velocity(imaging::synthetic_velocity(w.decomp, 0.5));
  const index_t n = w.decomp.local_real_size();
  grid::VectorField f(n), out(n);
  for (index_t i = 0; i < n; ++i)
    for (int d = 0; d < 3; ++d)
      f[d][i] = static_cast<real_t>(((i + d) * 2654435761u) % 1000) / 1000;
  for (auto _ : state) {
    if (batched) {
      transport.interp_vec_at_forward_points(f, out);
    } else {
      for (int d = 0; d < 3; ++d)
        transport.interp_at_forward_points(f[d], out[d]);
    }
    benchmark::DoNotOptimize(out[0].data());
  }
  state.SetItemsProcessed(state.iterations() * 3 * n);
}
BENCHMARK(BM_InterpBatchedVsSequential)->Arg(0)->Arg(1);

void BM_InterpPlanExecute(benchmark::State& state) {
  // Executing a cached plan (one ghost exchange + eval + return): the fast
  // path taken nt times per transport solve.
  World& w = world(state.range(0));
  semilag::TransportConfig tc;
  semilag::Transport transport(w.ops, tc);
  auto v = imaging::synthetic_velocity(w.decomp, 0.5);
  transport.set_velocity(v);
  auto f = imaging::synthetic_template(w.decomp);
  grid::ScalarField out(w.decomp.local_real_size());
  for (auto _ : state) {
    transport.interp_at_forward_points(f, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * w.decomp.local_real_size());
}
BENCHMARK(BM_InterpPlanExecute)->Arg(32);

void BM_TransportSolveState(benchmark::State& state) {
  // Ablation: tricubic (arg 0) vs trilinear (arg 1) full state solve.
  World& w = world(32);
  semilag::TransportConfig tc;
  tc.method = state.range(0) == 0 ? interp::Method::kTricubic
                                  : interp::Method::kTrilinear;
  semilag::Transport transport(w.ops, tc);
  auto v = imaging::synthetic_velocity(w.decomp, 0.5);
  transport.set_velocity(v);
  auto rho = imaging::synthetic_template(w.decomp);
  for (auto _ : state) {
    transport.solve_state(rho);
    benchmark::DoNotOptimize(&transport);
  }
  state.SetLabel(state.range(0) == 0 ? "tricubic" : "trilinear");
}
BENCHMARK(BM_TransportSolveState)->Arg(0)->Arg(1);

void BM_GhostExchange(benchmark::State& state) {
  World& w = world(state.range(0));
  grid::GhostExchange gx(w.decomp, interp::kGhostWidth);
  auto f = imaging::synthetic_template(w.decomp);
  std::vector<real_t> ghosted;
  for (auto _ : state) {
    gx.exchange(f, ghosted);
    benchmark::DoNotOptimize(ghosted.data());
  }
  state.SetItemsProcessed(state.iterations() * w.decomp.local_real_size());
}
BENCHMARK(BM_GhostExchange)->Arg(32)->Arg(64);

void BM_HessianMatvec(benchmark::State& state) {
  // Ablation: Gauss-Newton (arg 0) vs full Newton (arg 1) matvec cost.
  const bool gauss_newton = state.range(0) == 0;
  World& w = world(32);
  semilag::TransportConfig tc;
  semilag::Transport transport(w.ops, tc);
  core::Regularization reg(w.ops, core::RegType::kH2Seminorm, 1e-2);
  auto rho_t = imaging::synthetic_template(w.decomp);
  auto v_star = imaging::synthetic_velocity(w.decomp, 0.4);
  auto rho_r = imaging::make_reference(w.ops, rho_t, v_star);
  core::OptimalitySystem system(w.ops, transport, reg, rho_t, rho_r, false,
                                gauss_newton);
  auto v = imaging::synthetic_velocity(w.decomp, 0.2);
  system.evaluate(v);
  grid::VectorField g(w.decomp.local_real_size());
  system.gradient(g);
  auto dir = imaging::synthetic_velocity_divfree(w.decomp, 0.3);
  grid::VectorField out(w.decomp.local_real_size());
  for (auto _ : state) {
    system.hessian_matvec(dir, out);
    benchmark::DoNotOptimize(out[0].data());
  }
  state.SetLabel(gauss_newton ? "gauss-newton" : "full-newton");
}
BENCHMARK(BM_HessianMatvec)->Arg(0)->Arg(1);

// Rounds per run_spmd launch in the collectives benchmarks: enough that the
// p-thread spawn/join cost is amortized to noise and the timing isolates the
// collective itself.
constexpr int kCollectiveRounds = 1024;

void BM_AllreduceScalar(benchmark::State& state) {
  // Comm-path regression guard: recursive-doubling scalar allreduce
  // wall-time vs rank count p (the per-iteration norm/dot pattern of PCG).
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
      real_t acc = comm.rank() + 1.0;
      for (int round = 0; round < kCollectiveRounds; ++round)
        acc = comm.allreduce_sum(acc);
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(state.iterations() * kCollectiveRounds);
}
BENCHMARK(BM_AllreduceScalar)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(8);

void BM_AllreduceVector(benchmark::State& state) {
  // Reduce-then-broadcast vector allreduce on a batch of field norms.
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
      std::vector<real_t> norms(8, comm.rank() + 0.5);
      for (int round = 0; round < kCollectiveRounds; ++round)
        comm.allreduce_sum(norms);
      benchmark::DoNotOptimize(norms.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * kCollectiveRounds);
}
BENCHMARK(BM_AllreduceVector)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(8);

void BM_BroadcastTree(benchmark::State& state) {
  // Binomial-tree broadcast of a pencil-sized buffer vs rank count p.
  const int p = static_cast<int>(state.range(0));
  const size_t n = 1 << 14;  // 128 KiB of doubles
  const int rounds = 64;     // fewer rounds: each one moves (p-1)*128 KiB
  for (auto _ : state) {
    mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
      std::vector<real_t> buf;
      if (comm.rank() == 0) buf.assign(n, 1.0);
      for (int round = 0; round < rounds; ++round) comm.broadcast(buf, 0);
      benchmark::DoNotOptimize(buf.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * n);
}
BENCHMARK(BM_BroadcastTree)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(8);

void BM_LerayProjection(benchmark::State& state) {
  World& w = world(state.range(0));
  auto v = imaging::synthetic_velocity(w.decomp, 1.0);
  for (auto _ : state) {
    w.ops.leray_project(v);
    benchmark::DoNotOptimize(v[0].data());
  }
  state.SetItemsProcessed(state.iterations() * w.decomp.local_real_size());
}
BENCHMARK(BM_LerayProjection)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
