// Reproduces Fig. 6 (paper): the brain registration problem — reference,
// template, residual before registration, residual after registration. The
// figure's message is the near-complete removal of the intensity mismatch;
// we print the residual norms and dump the four panels.
#include "bench_common.hpp"
#include "grid/field_io.hpp"
#include "imaging/io.hpp"

using namespace diffreg;
using namespace diffreg::bench;

int main() {
  const Int3 dims{48, 56, 48};
  std::printf("Fig. 6 (structure): brain registration residuals\n");

  mpisim::run_spmd(2, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, dims);
    auto rho_r = imaging::brain_phantom(decomp, 1);
    auto rho_t = imaging::brain_phantom(decomp, 2);

    core::RegistrationOptions opt;
    opt.beta = 1e-3;
    opt.gtol = 1e-2;
    opt.max_newton_iters = 15;
    core::RegistrationSolver solver(decomp, opt);
    auto result = solver.run(rho_t, rho_r);

    grid::ScalarField deformed;
    solver.deform_template(rho_t, result.velocity, deformed);

    const index_t n = decomp.local_real_size();
    grid::ScalarField res_before(n), res_after(n);
    for (index_t i = 0; i < n; ++i) {
      res_before[i] = std::abs(rho_t[i] - rho_r[i]);
      res_after[i] = std::abs(deformed[i] - rho_r[i]);
    }

    auto dump = [&](const grid::ScalarField& f, const char* name) {
      auto full = grid::gather_to_root(decomp, f);
      if (comm.is_root())
        imaging::write_pgm_slice(std::string("fig6_") + name + ".pgm", dims,
                                 full, dims[0] / 2, 0, 1);
    };
    dump(rho_r, "reference");
    dump(rho_t, "template");
    dump(res_before, "residual_before");
    dump(res_after, "residual_after");

    if (comm.is_root()) {
      std::printf("  ||rho_T - rho_R||          : %.4f\n",
                  result.initial_residual_norm);
      std::printf("  ||rho_T(y1) - rho_R||      : %.4f\n",
                  result.final_residual_norm);
      std::printf("  relative residual          : %.3f\n",
                  result.rel_residual);
      std::printf("  det(grad y) in [%.3f, %.3f]\n", result.min_det,
                  result.max_det);
      std::printf("  wrote fig6_*.pgm panels\n");
      std::printf(
          "\nExpected shape (paper Fig. 6): the post-registration residual\n"
          "is close to white (near zero) except at fine anatomical detail;\n"
          "here the relative residual drops well below 1.\n");
    }
  });
  return 0;
}
