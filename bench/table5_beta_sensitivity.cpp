// Reproduces Table V (paper): sensitivity of the computational work to the
// regularization weight beta in {1e-1, 1e-3, 1e-5} for a fixed number of
// Newton iterations on the brain problem. The paper reports 43 / 217 / 1689
// Hessian matvecs (time factors 1.0 / 4.6 / 35.0): the spectral
// preconditioner is mesh independent but NOT beta independent, so the
// Krylov work grows sharply as beta shrinks. The absolute counts here
// differ (smaller grid, different images); the monotone blow-up is the
// result to reproduce.
#include "bench_common.hpp"

using namespace diffreg;
using namespace diffreg::bench;

int main() {
  std::printf(
      "Table V (structure): work vs regularization weight, brain phantom, "
      "4 Newton iterations\n");
  std::printf("%4s %10s %10s %18s %12s\n", "#", "beta", "matvecs",
              "time to solution", "(relative)");

  double base_time = 0;
  int id = 30;  // numbering follows the paper's Table V (#30...)
  for (real_t beta : {1e-1, 1e-3, 1e-5}) {
    CaseConfig config;
    config.dims = {32, 36, 32};
    config.ranks = 2;
    config.workload = Workload::kBrain;
    config.options.beta = beta;
    config.options.gtol = 1e-6;            // do not stop early:
    config.options.max_newton_iters = 4;   // fixed 4 Newton iterations
    config.options.max_krylov_iters = 500;
    const CaseResult r = run_case(config);
    if (base_time == 0) base_time = r.time_to_solution;
    std::printf("%4d %10.0e %10d %18.2f %12.1f\n", id++, beta, r.matvecs,
                r.time_to_solution, r.time_to_solution / base_time);
  }

  std::printf(
      "\nExpected shape (paper #30-32): matvecs and time grow by one to two\n"
      "orders of magnitude from beta=1e-1 to beta=1e-5 — the preconditioner\n"
      "deteriorates with beta (the paper's stated limitation).\n");
  return 0;
}
