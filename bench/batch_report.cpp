// Batch service bench leg: B co-resident registrations through one shared
// PlanRegistry (core::BatchSolver, docs/SERVICE.md) against the same B jobs
// run back to back through standalone RegistrationSolvers at p = 4.
//
// Records:
//
//  * sequential/sharded at 32^3 — the headline pair: fresh solver + plans
//    per job in the sequential leg, automatic communicator sharding in the
//    batch leg;
//  * sequential/sharded at 16^3 — the comm-bound regime (tiny per-rank
//    blocks, collective overhead dominates the solve): where the paper's
//    many-pair service pays off hardest, and where the >= 1.5x
//    registrations/sec target is met even on this box;
//  * coresident at 32^3 — BatchSolver pinned to shards=1 (the
//    bitwise-reference mode) with fused deformed-template transport, run
//    TWICE on one solver to prove the registry caches across batches
//    (rebatch_extra_builds must stay 0);
//  * fault_recovery at 16^3 — the same batch clean and under a seeded
//    rank crash (docs/FAULT_MODEL.md): recovered_jobs_rate gates that every
//    job still completes (higher-is-better rate class), retry_overhead_ms
//    prices the watchdog wait + redone attempt, and all_converged flips if
//    a retried job stops converging.
//
// Scaling note (see bench_common.hpp): the speedup of the sharded legs is
// the oversubscription overhead that sharding removes — on this container
// every rank timeshares the same core, so the 32^3 compute-bound headline
// is capped near the measured p=4-vs-p=1 cost ratio (~1.3x) and the full
// >= 1.5x target shows in the comm-bound 16^3 record and on multi-core
// hosts, where shards run truly concurrently.
//
// Field classes (bench/check_regression.py): wall times (*_ms) get the
// time tolerance; throughput and speedup (*_rate) are gated as
// higher-is-better mirrors of the wall times; the plan-build counters are
// exact (deterministic properties of the registry keying — any growth
// means plan reuse broke); *_converged flags are exact.
//
// Usage: batch_report [output.json]
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "common/timer.hpp"

using namespace diffreg;

namespace {

constexpr int kRanks = 4;
constexpr int kJobs = 8;

core::RegistrationOptions job_options(int nt, int max_newton) {
  core::RegistrationOptions opt;
  opt.nt = nt;
  opt.max_newton_iters = max_newton;
  return opt;
}

real_t job_amplitude(int j) { return 0.30 + 0.02 * j; }

void build_job_inputs(grid::PencilDecomp& decomp, real_t amplitude, int nt,
                      grid::ScalarField& rho_t, grid::ScalarField& rho_r) {
  spectral::SpectralOps ops(decomp);
  rho_t = imaging::synthetic_template(decomp);
  auto v = imaging::synthetic_velocity(decomp, amplitude);
  rho_r = imaging::make_reference(ops, rho_t, v, nt);
}

struct Leg {
  double wall_seconds = 0;
  double rate = 0;  // registrations per second
  bool all_converged = true;
  int shards = 1;
  core::PlanRegistry::Stats stats;
  std::uint64_t rebatch_extra_builds = 0;
};

struct FaultLeg {
  double clean_wall_ms = 0;   // fault-free pass of the same batch
  double fault_wall_ms = 0;   // pass with the seeded rank crash
  double retry_overhead_ms = 0;  // fault_wall - clean_wall, floored at 0
  double recovered_rate = 0;  // jobs finishing kDone / jobs submitted
  int total_attempts = 0;     // jobs + retries (jobs + 1 when the crash fires)
  int shard_rebuilds = 0;
  bool all_converged = true;
};

/// Pre-service baseline: kJobs standalone solver runs back to back, each
/// building its decomposition, FFT, interpolation and transport plans from
/// scratch. Best of `reps` passes (the box is shared; throughput legs are
/// compared pass-for-pass, so each leg reports its least-disturbed pass).
Leg run_sequential(index_t n, const core::RegistrationOptions& opt,
                   int reps) {
  Leg out;
  const Int3 dims{n, n, n};
  mpisim::run_spmd(kRanks, [&](mpisim::Communicator& comm) {
    double best = 0;
    bool converged = true;
    for (int rep = 0; rep < reps; ++rep) {
      WallTimer t;
      for (int j = 0; j < kJobs; ++j) {
        grid::PencilDecomp decomp(comm, dims);
        grid::ScalarField rho_t, rho_r;
        build_job_inputs(decomp, job_amplitude(j), opt.nt, rho_t, rho_r);
        core::RegistrationSolver solver(decomp, opt);
        auto res = solver.run(rho_t, rho_r);
        converged = converged && res.newton.converged;
      }
      const double wall = comm.allreduce_max(t.seconds());
      if (rep == 0 || wall < best) best = wall;
    }
    if (comm.is_root()) {
      out.wall_seconds = best;
      out.all_converged = converged;
    }
  });
  out.rate = kJobs / out.wall_seconds;
  return out;
}

/// Service mode: the same kJobs through one BatchSolver, `reps` times on
/// the SAME solver — the first pass builds the shard registries, later
/// passes measure the warm service and prove the registry caches across
/// batches (rebatch_extra_builds counts plans built after the first pass
/// and must stay zero). Reports the best pass.
Leg run_batch(index_t n, const core::RegistrationOptions& opt, int shards,
              bool want_deformed, int reps) {
  Leg out;
  const Int3 dims{n, n, n};
  mpisim::run_spmd(kRanks, [&](mpisim::Communicator& comm) {
    core::BatchSolver batch(comm);
    const auto submit_all = [&] {
      for (int j = 0; j < kJobs; ++j) {
        core::BatchJobSpec spec;
        spec.dims = dims;
        spec.request.options = opt;
        spec.request.job_id = static_cast<std::uint64_t>(j + 1);
        const real_t amplitude = job_amplitude(j);
        const int nt = opt.nt;
        spec.make_inputs = [amplitude, nt](grid::PencilDecomp& d,
                                           grid::ScalarField& t,
                                           grid::ScalarField& r) {
          build_job_inputs(d, amplitude, nt, t, r);
        };
        batch.submit(std::move(spec));
      }
    };
    const auto builds = [](const core::PlanRegistry::Stats& s) {
      return static_cast<std::uint64_t>(s.decomp_builds + s.spectral_builds +
                                        s.resample_builds +
                                        s.transport_builds);
    };
    core::BatchOptions bopt;
    bopt.shards = shards;
    bopt.want_deformed = want_deformed;

    double best_wall = 0, best_rate = 0;
    bool converged = true;
    std::uint64_t first_builds = 0, last_builds = 0;
    core::PlanRegistry::Stats first_stats;
    int rep_shards = 1;
    for (int rep = 0; rep < reps; ++rep) {
      submit_all();
      auto rr = batch.run_all(bopt);
      if (rep == 0) {
        first_builds = builds(rr.registry);
        first_stats = rr.registry;
      }
      last_builds = builds(rr.registry);
      rep_shards = rr.shards;
      for (const auto& s : rr.summary)
        converged = converged && s.converged;
      if (rep == 0 || rr.wall_seconds < best_wall) {
        best_wall = rr.wall_seconds;
        best_rate = rr.registrations_per_sec;
      }
    }
    if (comm.is_root()) {
      out.wall_seconds = best_wall;
      out.rate = best_rate;
      out.shards = rep_shards;
      out.stats = first_stats;
      out.rebatch_extra_builds = last_builds - first_builds;
      out.all_converged = converged;
    }
  });
  return out;
}

/// Resilience leg (docs/FAULT_MODEL.md): the same batch twice at p = 2,
/// shards = 1 — once clean (best of `reps`), once with a seeded rank crash
/// mid-solve under a 400 ms comm watchdog. The faulted pass must recover
/// every job (recovered_jobs_rate stays 1, all_converged stays set) and the
/// price of resilience — the watchdog wait plus the redone attempt — is
/// published as retry_overhead_ms.
FaultLeg run_fault_recovery(index_t n, const core::RegistrationOptions& opt,
                            int reps) {
  constexpr int kFaultRanks = 2;
  FaultLeg out;
  const Int3 dims{n, n, n};
  const auto run_pass = [&](bool faulted) {
    struct Pass {
      double wall_ms = 0;
      int attempts = 0;
      int recovered = 0;
      int shard_rebuilds = 0;
      bool converged = true;
    } pass;
    mpisim::SpmdOptions sopts;
    if (faulted) {
      // Same deterministic spec as the chaos suite: the per-rank comm-op
      // counter passes crash_at mid-solve, one rank dies once, the shard
      // recovers and requeues the in-flight job.
      sopts.fault_spec = "seed=3,crash_rank=1,crash_at=2000";
      sopts.comm_timeout_ms = 400;
    }
    mpisim::run_spmd(
        kFaultRanks,
        [&](mpisim::Communicator& comm) {
          core::BatchSolver batch(comm);
          for (int j = 0; j < kJobs; ++j) {
            core::BatchJobSpec spec;
            spec.dims = dims;
            spec.request.options = opt;
            spec.request.job_id = static_cast<std::uint64_t>(j + 1);
            const real_t amplitude = job_amplitude(j);
            const int nt = opt.nt;
            spec.make_inputs = [amplitude, nt](grid::PencilDecomp& d,
                                               grid::ScalarField& t,
                                               grid::ScalarField& r) {
              build_job_inputs(d, amplitude, nt, t, r);
            };
            batch.submit(std::move(spec));
          }
          core::BatchOptions bopt;
          bopt.shards = 1;
          auto rr = batch.run_all(bopt);
          if (comm.is_root()) {
            pass.wall_ms = rr.wall_seconds * 1e3;
            pass.shard_rebuilds = rr.shard_rebuilds;
            for (const auto& s : rr.summary) {
              pass.attempts += s.attempts;
              if (s.outcome == core::JobOutcome::kDone) ++pass.recovered;
              pass.converged = pass.converged && s.converged;
            }
          }
        },
        sopts);
    return pass;
  };

  double clean_best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto clean = run_pass(/*faulted=*/false);
    if (rep == 0 || clean.wall_ms < clean_best) clean_best = clean.wall_ms;
    out.all_converged = out.all_converged && clean.converged;
  }
  const auto faulted = run_pass(/*faulted=*/true);
  out.clean_wall_ms = clean_best;
  out.fault_wall_ms = faulted.wall_ms;
  out.retry_overhead_ms =
      faulted.wall_ms > clean_best ? faulted.wall_ms - clean_best : 0;
  out.recovered_rate = static_cast<double>(faulted.recovered) / kJobs;
  out.total_attempts = faulted.attempts;
  out.shard_rebuilds = faulted.shard_rebuilds;
  out.all_converged = out.all_converged && faulted.converged;
  return out;
}

void print_pair(const char* label, const Leg& seq, const Leg& sharded) {
  std::printf("%s sequential: %d jobs in %.2f s  (%.3f registrations/s)\n",
              label, kJobs, seq.wall_seconds, seq.rate);
  std::printf("%s sharded:    %d jobs in %.2f s  (%.3f registrations/s, "
              "%d shards, %d+%d+%d plan builds on the root shard)\n",
              label, kJobs, sharded.wall_seconds, sharded.rate,
              sharded.shards, sharded.stats.decomp_builds,
              sharded.stats.spectral_builds,
              sharded.stats.transport_builds);
}

void emit_pair(std::FILE* f, index_t n, const Leg& seq, const Leg& sharded,
               double speedup) {
  std::fprintf(f,
               "    {\"case\": \"sequential\", \"size\": %lld, \"ranks\": %d, "
               "\"jobs\": %d, \"wall_ms\": %.1f, \"throughput_rate\": %.4f, "
               "\"all_converged\": %d},\n",
               static_cast<long long>(n), kRanks, kJobs,
               seq.wall_seconds * 1e3, seq.rate, seq.all_converged ? 1 : 0);
  std::fprintf(f,
               "    {\"case\": \"sharded\", \"size\": %lld, \"ranks\": %d, "
               "\"jobs\": %d, \"shards\": %d, \"wall_ms\": %.1f, "
               "\"throughput_rate\": %.4f, \"speedup_vs_sequential_rate\": "
               "%.4f, \"decomp_builds\": %d, \"spectral_builds\": %d, "
               "\"transport_builds\": %d, \"all_converged\": %d},\n",
               static_cast<long long>(n), kRanks, kJobs, sharded.shards,
               sharded.wall_seconds * 1e3, sharded.rate, speedup,
               sharded.stats.decomp_builds, sharded.stats.spectral_builds,
               sharded.stats.transport_builds,
               sharded.all_converged ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_batch.json";

  // Headline: 32^3 jobs at the repo-default step count.
  const core::RegistrationOptions opt32 = job_options(4, 5);
  const Leg seq32 = run_sequential(32, opt32, /*reps=*/2);
  const Leg shard32 = run_batch(32, opt32, /*shards=*/0,
                                /*want_deformed=*/false, /*reps=*/2);
  const double speedup32 = shard32.rate / seq32.rate;

  // Comm-bound regime: 16^3, default nt.
  const core::RegistrationOptions opt16 = job_options(4, 12);
  const Leg seq16 = run_sequential(16, opt16, /*reps=*/3);
  const Leg shard16 = run_batch(16, opt16, /*shards=*/0,
                                /*want_deformed=*/false, /*reps=*/3);
  const double speedup16 = shard16.rate / seq16.rate;

  // Registry persistence + fused deformed-template transport.
  const core::RegistrationOptions optc = job_options(4, 5);
  const Leg cores = run_batch(32, optc, /*shards=*/1, /*want_deformed=*/true,
                              /*reps=*/2);

  // Fault recovery: seeded crash, comm-bound 16^3 jobs.
  const FaultLeg fault = run_fault_recovery(16, opt16, /*reps=*/2);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "batch_report: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"batch\",\n  \"flags\": \"%s\",\n"
               "  \"records\": [\n",
               bench::arch_flags());
  emit_pair(f, 32, seq32, shard32, speedup32);
  emit_pair(f, 16, seq16, shard16, speedup16);
  std::fprintf(f,
               "    {\"case\": \"coresident\", \"size\": %d, \"ranks\": %d, "
               "\"jobs\": %d, \"wall_ms\": %.1f, \"throughput_rate\": %.4f, "
               "\"decomp_builds\": %d, \"spectral_builds\": %d, "
               "\"transport_builds\": %d, \"rebatch_extra_builds\": %llu, "
               "\"all_converged\": %d},\n",
               32, kRanks, kJobs, cores.wall_seconds * 1e3, cores.rate,
               cores.stats.decomp_builds, cores.stats.spectral_builds,
               cores.stats.transport_builds,
               static_cast<unsigned long long>(cores.rebatch_extra_builds),
               cores.all_converged ? 1 : 0);
  std::fprintf(f,
               "    {\"case\": \"fault_recovery\", \"size\": %d, "
               "\"ranks\": %d, \"jobs\": %d, \"wall_ms\": %.1f, "
               "\"clean_wall_ms\": %.1f, \"retry_overhead_ms\": %.1f, "
               "\"recovered_jobs_rate\": %.4f, \"total_attempts\": %d, "
               "\"shard_rebuilds\": %d, \"all_converged\": %d}\n",
               16, 2, kJobs, fault.fault_wall_ms, fault.clean_wall_ms,
               fault.retry_overhead_ms, fault.recovered_rate,
               fault.total_attempts, fault.shard_rebuilds,
               fault.all_converged ? 1 : 0);
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  print_pair("32^3", seq32, shard32);
  print_pair("16^3", seq16, shard16);
  std::printf("coresident 32^3: %d jobs in %.2f s  (%.3f registrations/s, "
              "rebatch built %llu plans)\n",
              kJobs, cores.wall_seconds, cores.rate,
              static_cast<unsigned long long>(cores.rebatch_extra_builds));
  std::printf("fault recovery 16^3: %d jobs, seeded crash -> %.0f%% "
              "recovered in %d attempts (%d shard rebuilds, retry overhead "
              "%.0f ms over the %.0f ms clean pass)\n",
              kJobs, fault.recovered_rate * 100, fault.total_attempts,
              fault.shard_rebuilds, fault.retry_overhead_ms,
              fault.clean_wall_ms);
  std::printf("batch speedup: %.2fx at 32^3, %.2fx at 16^3 comm-bound "
              "(target >= 1.5x; single-core hosts cap the 32^3 headline "
              "near the p=4/p=1 cost ratio)\n",
              speedup32, speedup16);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
