// Multilevel continuation trajectory reporter: times a cold single-level
// solve against the 3-level coarse-to-fine pyramid on the same registration
// problem (both to the same gtol), and the spectral smoother against the
// two-level coarse-grid Hessian preconditioner at small beta. One JSON
// record per configuration goes to BENCH_continuation.json for the CI
// bench-regression gate (bench/check_regression.py): wall times are gated
// with a tolerance, Krylov/matvec counts (*_iters) with a smaller one, and
// the resample exchange counter exactly.
//
// Usage: continuation_report [output.json]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "core/continuation.hpp"
#include "imaging/synthetic.hpp"
#include "mpisim/communicator.hpp"
#include "spectral/resample.hpp"

using namespace diffreg;

namespace {

int krylov_total(const core::RegistrationResult& r) {
  int total = 0;
  for (const auto& e : r.newton.log) total += e.krylov_iterations;
  return total;
}

struct PyramidRecord {
  index_t n = 0;
  int p = 0;
  double single_ms = 0, pyramid_ms = 0;
  int single_converged = 0, pyramid_converged = 0;
  int single_matvecs = 0, pyramid_matvecs = 0;  // pyramid: all levels
  std::uint64_t resample_exchanges = 0;  // per 3-component apply (exact)
};

/// Cold full-resolution solve vs the 3-level pyramid, both at beta = 1e-3 —
/// the low-beta regime grid continuation exists for.
PyramidRecord run_pyramid_case(index_t n, int p) {
  PyramidRecord rec;
  rec.n = n;
  rec.p = p;
  mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp fine(comm, {n, n, n});
    spectral::SpectralOps ops(fine);
    auto rho_t = imaging::synthetic_template(fine);
    auto v_star = imaging::synthetic_velocity(fine, 0.6);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    core::RegistrationOptions opt;
    opt.beta = 1e-3;
    opt.gtol = 1e-2;
    opt.max_newton_iters = 20;

    WallTimer t1;
    core::RegistrationSolver cold_solver(fine, opt);
    auto cold = cold_solver.run(rho_t, rho_r);
    const double single_s = t1.seconds();

    WallTimer t2;
    core::MultilevelOptions mopt;
    mopt.levels = 3;
    mopt.coarsest_dim = 8;
    auto ml = core::run_multilevel_continuation(fine, opt, rho_t, rho_r,
                                                mopt);
    const double pyramid_s = t2.seconds();

    // Exchange cost of one batched 3-component grid transfer: 2 forward +
    // 1 remap + 2 inverse alltoallv, a deterministic property of the plan.
    grid::PencilDecomp coarse(comm, spectral::coarsen_dims(fine.dims(), 8),
                              fine.p1(), fine.p2());
    spectral::ResamplePlan plan(fine, coarse);
    grid::VectorField vec_out;
    const auto before = comm.timings().exchanges(TimeKind::kFftComm);
    plan.apply(cold.velocity, vec_out);
    const auto exchanges =
        comm.timings().exchanges(TimeKind::kFftComm) - before;

    if (comm.is_root()) {
      rec.single_ms = single_s * 1e3;
      rec.pyramid_ms = pyramid_s * 1e3;
      rec.single_converged = cold.newton.converged ? 1 : 0;
      rec.pyramid_converged = ml.fine.newton.converged ? 1 : 0;
      rec.single_matvecs = cold.newton.total_matvecs;
      for (const auto& lev : ml.levels) rec.pyramid_matvecs += lev.matvecs;
      rec.resample_exchanges = exchanges;
    }
  });
  return rec;
}

struct PrecondRecord {
  index_t n = 0;
  int p = 0;
  double smooth_ms = 0, two_level_ms = 0;
  int smooth_krylov = 0, two_level_krylov = 0;
  int two_level_coarse_matvecs = 0;
  int smooth_converged = 0, two_level_converged = 0;
};

/// Spectral smoother alone vs smoother + coarse-grid Hessian correction at
/// beta = 1e-3 (where the smoother's low band degrades).
PrecondRecord run_precond_case(index_t n, int p) {
  PrecondRecord rec;
  rec.n = n;
  rec.p = p;
  mpisim::run_spmd(p, [&](mpisim::Communicator& comm) {
    grid::PencilDecomp decomp(comm, {n, n, n});
    spectral::SpectralOps ops(decomp);
    auto rho_t = imaging::synthetic_template(decomp);
    auto v_star = imaging::synthetic_velocity(decomp, 0.5);
    auto rho_r = imaging::make_reference(ops, rho_t, v_star);

    core::RegistrationOptions opt;
    opt.beta = 1e-3;
    opt.gtol = 1e-2;
    opt.max_newton_iters = 12;

    WallTimer t1;
    core::RegistrationSolver smooth_solver(decomp, opt);
    auto smooth = smooth_solver.run(rho_t, rho_r);
    const double smooth_s = t1.seconds();

    opt.two_level_precond = true;
    opt.precond_coarsest_dim = 8;
    WallTimer t2;
    core::RegistrationSolver two_level_solver(decomp, opt);
    auto two_level = two_level_solver.run(rho_t, rho_r);
    const double two_level_s = t2.seconds();

    if (comm.is_root()) {
      rec.smooth_ms = smooth_s * 1e3;
      rec.two_level_ms = two_level_s * 1e3;
      rec.smooth_krylov = krylov_total(smooth);
      rec.two_level_krylov = krylov_total(two_level);
      rec.two_level_coarse_matvecs = two_level.coarse_matvecs;
      rec.smooth_converged = smooth.newton.converged ? 1 : 0;
      rec.two_level_converged = two_level.newton.converged ? 1 : 0;
    }
  });
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_continuation.json";

  const PyramidRecord pyr = run_pyramid_case(48, 2);
  const PrecondRecord pre = run_precond_case(32, 2);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "continuation_report: cannot open %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"continuation\",\n  \"flags\": \"%s\",\n"
               "  \"records\": [\n",
               bench::arch_flags());
  std::fprintf(
      f,
      "    {\"case\": \"pyramid3_beta1e-3\", \"size\": %lld, \"ranks\": %d, "
      "\"single_level_ms\": %.2f, \"pyramid_ms\": %.2f, "
      "\"single_converged\": %d, \"pyramid_converged\": %d, "
      "\"single_matvecs_iters\": %d, \"pyramid_total_matvecs_iters\": %d, "
      "\"resample_exchanges_per_vec3_apply\": %llu},\n",
      static_cast<long long>(pyr.n), pyr.p, pyr.single_ms, pyr.pyramid_ms,
      pyr.single_converged, pyr.pyramid_converged, pyr.single_matvecs,
      pyr.pyramid_matvecs,
      static_cast<unsigned long long>(pyr.resample_exchanges));
  std::fprintf(
      f,
      "    {\"case\": \"two_level_precond_beta1e-3\", \"size\": %lld, "
      "\"ranks\": %d, \"smooth_ms\": %.2f, \"two_level_ms\": %.2f, "
      "\"smooth_krylov_iters\": %d, \"two_level_krylov_iters\": %d, "
      "\"two_level_coarse_matvecs_iters\": %d, \"smooth_converged\": %d, "
      "\"two_level_converged\": %d}\n",
      static_cast<long long>(pre.n), pre.p, pre.smooth_ms, pre.two_level_ms,
      pre.smooth_krylov, pre.two_level_krylov, pre.two_level_coarse_matvecs,
      pre.smooth_converged, pre.two_level_converged);
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::printf(
      "pyramid %lld^3 p=%d: single %.0f ms (%d matvecs) vs 3-level %.0f ms "
      "(%d matvecs across levels), converged %d/%d, %llu exchanges per "
      "vec3 resample\n",
      static_cast<long long>(pyr.n), pyr.p, pyr.single_ms, pyr.single_matvecs,
      pyr.pyramid_ms, pyr.pyramid_matvecs, pyr.single_converged,
      pyr.pyramid_converged,
      static_cast<unsigned long long>(pyr.resample_exchanges));
  std::printf(
      "precond %lld^3 p=%d beta=1e-3: smoother %.0f ms / %d krylov vs "
      "two-level %.0f ms / %d krylov (+%d coarse matvecs), converged %d/%d\n",
      static_cast<long long>(pre.n), pre.p, pre.smooth_ms, pre.smooth_krylov,
      pre.two_level_ms, pre.two_level_krylov, pre.two_level_coarse_matvecs,
      pre.smooth_converged, pre.two_level_converged);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
